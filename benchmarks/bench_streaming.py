"""Streaming bench: sustained events/sec + registration→detection latency.

PR 8 refactors the batch pipeline into an always-on incremental feed:
a deterministic registration/CT-log event tape streams through
ingest → delta-scan → (conditional compact), with every compaction
boundary asserting the streaming match state byte-identical to a
from-scratch batch scan of the compacted union.

This bench drives one tape through the :class:`repro.stream.StreamingDriver`
at worker counts {1, 4} and reports the two headline numbers from the
issue: **sustained events/sec ingested** (host wall clock) and **median
sim-clock registration→detection latency** (flush time − event time).
Both legs must land on the digest of the from-scratch batch scan over
the full tape's union — the determinism contract at every worker count.

The third exhibit is the refactor's point: **delta-scan latency is
sublinear in base-snapshot size**.  The same ~fixed-size delta segment
is scanned against a small base and a 4x base; because the incremental
scan touches only the delta's rows (reusing the cached
``DetectorMatrices`` via the forced label width), its latency must not
grow with the base — asserted as: delta-scan seconds against the big
base < 2x against the small base, while a full batch scan of the big
base costs >= 2x the small one (min-of-attempts, gc-paused timing, as
in ``bench_serving.py``).

A ``BENCH_streaming.json`` summary is written for the perf trajectory;
CI runs the smoke scale and archives the JSON as an artifact.

Environment knobs (the ``__main__`` flags override them, for CI):
    STREAM_BENCH_SCALE  "default" (6k-event tape, sublinearity floor
                        asserted) or "smoke" (1.2k events, digest
                        equality only).
    STREAM_BENCH_OUT    summary path (default: BENCH_streaming.json).
"""

import json
import os
import time

from repro.analysis.render import table
from repro.brands import build_paper_catalog
from repro.dns.deltazone import DeltaSegmentBuilder
from repro.dns.packedzone import pack_zone
from repro.phishworld.events import (
    EventTapeConfig,
    build_tape,
    replay_into_store,
)
from repro.squatting.detector import SquattingDetector
from repro.squatting.packedscan import PackedScanContext, packed_scan
from repro.stages import digest_squat_matches
from repro.stream import StreamingDriver

from exhibits import print_exhibit
from timing import best_of, gc_paused

SCALE = os.environ.get("STREAM_BENCH_SCALE", "default")
OUT_PATH = os.environ.get("STREAM_BENCH_OUT", "BENCH_streaming.json")

ATTEMPTS = 3             # min-of-attempts for the timed scans


def _scale_params(scale):
    """(tape events, base events, segment events, compact every,
    small/large sublinearity bases, assert floors?)."""
    if scale == "smoke":
        return 1_200, 400, 150, 3, (600, 2_400), False
    return 6_000, 2_000, 200, 5, (2_000, 8_000), True


# ----------------------------------------------------------------------
# streaming legs
# ----------------------------------------------------------------------

def _run_leg(detector, tape_config, base_events, segment_events,
             compact_every, workers):
    driver = StreamingDriver(
        detector, tape_config, base_events=base_events,
        segment_events=segment_events, compact_every=compact_every,
        workers=workers)
    outcome = driver.run()
    stats = outcome.stats
    return {
        "leg": f"streaming-{workers}w",
        "workers": workers,
        "events": stats.events,
        "segments": stats.segments,
        "compactions": stats.compactions,
        "digest_checks": stats.digest_checks,
        "detections": stats.detections,
        "seconds": round(stats.wall_seconds, 4),
        "events_per_sec": round(stats.events_per_sec, 1),
        "latency_p50_s": round(stats.latency_p50, 4),
        "latency_p95_s": round(stats.latency_p95, 4),
        "live_matches": stats.live_matches,
        "digest": outcome.match_digest,
    }


# ----------------------------------------------------------------------
# delta-scan sublinearity
# ----------------------------------------------------------------------

def _timed_scan(detector, zone, width=None, attempts=ATTEMPTS):
    return best_of(lambda: packed_scan(detector, zone, width=width),
                   attempts=attempts)


def _sublinearity_probe(detector, small_events, large_events, delta_events,
                        seed=77):
    """Delta-scan seconds against a small and a 4x base snapshot.

    The same delta segment (by construction: the events right after the
    large base prefix) is scanned standalone — the streaming path — and
    each base is scanned in full — the rebuild path the refactor
    replaces.  The delta leg's cost must track the delta, not the base.
    """
    tape = build_tape(EventTapeConfig(
        seed=seed, n_events=large_events + delta_events))
    small = pack_zone(replay_into_store(tape[:small_events]))
    large = pack_zone(replay_into_store(tape[:large_events]))
    builder = DeltaSegmentBuilder()
    from repro.phishworld.events import apply_event
    for event in tape[large_events:]:
        apply_event(builder, event)
    delta_small = builder.build(1, small.content_digest).zone
    delta_large = builder.build(1, large.content_digest).zone

    rows = []
    for label, base, delta in (("small", small, delta_small),
                               ("large", large, delta_large)):
        width = PackedScanContext(detector, base).width
        _timed_scan(detector, delta, width=width, attempts=1)  # warm caches
        delta_seconds, _ = _timed_scan(detector, delta, width=width)
        full_seconds, _ = _timed_scan(detector, base)
        rows.append({
            "base": label,
            "base_registered": base.n_registered,
            "delta_registered": delta.n_registered,
            "delta_scan_seconds": round(delta_seconds, 5),
            "full_scan_seconds": round(full_seconds, 5),
            "delta_vs_full": round(delta_seconds / max(full_seconds, 1e-9), 4),
        })
    return rows


# ----------------------------------------------------------------------
# bench driver
# ----------------------------------------------------------------------

def run_bench(scale=SCALE, out_path=OUT_PATH):
    with gc_paused():
        return _run_bench(scale, out_path)


def _run_bench(scale, out_path):
    (n_events, base_events, segment_events, compact_every,
     (small_base, large_base), assert_floors) = _scale_params(scale)
    detector = SquattingDetector(build_paper_catalog())
    tape_config = EventTapeConfig(seed=1803, n_events=n_events)

    # THE oracle: a from-scratch batch scan over the full tape's union
    print(f"building batch oracle over {n_events} events ({scale} scale) ...")
    tape = build_tape(tape_config)
    union = pack_zone(replay_into_store(tape))
    started = time.perf_counter()
    reference = digest_squat_matches(packed_scan(detector, union))
    oracle_seconds = time.perf_counter() - started

    rows = [
        _run_leg(detector, tape_config, base_events, segment_events,
                 compact_every, workers)
        for workers in (1, 4)
    ]

    print(f"probing delta-scan sublinearity "
          f"({small_base} vs {large_base} base events) ...")
    probe = _sublinearity_probe(detector, small_base, large_base,
                                segment_events)

    print_exhibit(
        "Streaming bench - legs (identical match digests)",
        table(
            ["leg", "events", "segments", "seconds", "events/s",
             "p50 latency", "p95 latency", "detections"],
            [[r["leg"], r["events"], r["segments"], f"{r['seconds']:.3f}",
              r["events_per_sec"], f"{r['latency_p50_s']:.3f}s",
              f"{r['latency_p95_s']:.3f}s", r["detections"]]
             for r in rows],
        ),
    )
    print_exhibit(
        "Delta-scan latency vs base size (sublinearity)",
        table(
            ["base", "base regs", "delta regs", "delta scan", "full scan",
             "delta/full"],
            [[p["base"], p["base_registered"], p["delta_registered"],
              f"{p['delta_scan_seconds']:.5f}s",
              f"{p['full_scan_seconds']:.5f}s",
              p["delta_vs_full"]] for p in probe],
        ),
    )

    summary = {
        "bench": "streaming",
        "scale": scale,
        "tape_events": n_events,
        "base_events": base_events,
        "segment_events": segment_events,
        "compact_every": compact_every,
        "oracle_seconds": round(oracle_seconds, 3),
        "batch_digest": reference,
        "runs": rows,
        "sublinearity": probe,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    print(f"\nwrote {out_path} "
          f"(1w: {rows[0]['events_per_sec']} events/s, "
          f"p50 detection latency {rows[0]['latency_p50_s']}s sim)")

    # determinism contract: streaming == batch at every worker count,
    # and the driver's own per-compaction assertions all fired
    for row in rows:
        assert row["digest"] == reference, \
            f"{row['leg']} diverged from the from-scratch batch scan"
        assert row["digest_checks"] >= row["compactions"] > 0
        assert row["latency_p50_s"] > 0.0, "no detection latency measured"

    # sublinearity: the delta leg must not inherit the base's cost.
    # (skipped at smoke scale: the scans are too short to time)
    if assert_floors:
        small_probe, large_probe = probe
        assert large_probe["full_scan_seconds"] >= \
            2.0 * small_probe["full_scan_seconds"], \
            "4x base did not cost >= 2x to rescan; probe is miscalibrated"
        assert large_probe["delta_scan_seconds"] < \
            2.0 * small_probe["delta_scan_seconds"], (
                "delta-scan latency grew with base size: "
                f"{small_probe['delta_scan_seconds']:.5f}s -> "
                f"{large_probe['delta_scan_seconds']:.5f}s")
        assert large_probe["delta_scan_seconds"] < \
            large_probe["full_scan_seconds"], \
            "scanning the delta cost as much as rescanning the base"
    return summary


def test_streaming_bench():
    run_bench()


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short tape, digest-equality assertions only")
    parser.add_argument("--out", default=None, help="summary JSON path")
    cli = parser.parse_args()
    run_bench(scale="smoke" if cli.smoke else SCALE,
              out_path=cli.out or OUT_PATH)
