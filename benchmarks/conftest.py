"""Shared bench fixtures: one mid-scale world + one full pipeline run.

Every exhibit bench reads from the same session-scoped artifacts, so the
expensive work (world build, crawl, OCR-heavy wild detection) happens once
per ``pytest benchmarks/`` invocation.  The ``benchmark`` fixture then times
the exhibit-producing analysis itself.

Scale: ~1/250 of the paper's snapshot (2,500 squatting domains, 150 planted
squatting-phishing domains, 700 PhishTank reports).  All exhibits are
compared as rates/shapes, which are scale-invariant; see EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.core import PipelineConfig, SquatPhi
from repro.phishworld.world import WorldConfig, build_world

BENCH_WORLD_CONFIG = WorldConfig(
    seed=1803,
    n_organic_domains=2500,
    n_squat_domains=2500,
    n_phish_domains=150,
    phishtank_reports=700,
)

BENCH_PIPELINE_CONFIG = PipelineConfig(cv_folds=10, rf_trees=30)


@pytest.fixture(scope="session")
def bench_world():
    return build_world(BENCH_WORLD_CONFIG)


@pytest.fixture(scope="session")
def bench_pipeline(bench_world):
    return SquatPhi(bench_world, BENCH_PIPELINE_CONFIG)


@pytest.fixture(scope="session")
def bench_result(bench_pipeline):
    """The full SquatPhi run every exhibit bench consumes."""
    return bench_pipeline.run(follow_up_snapshots=True)


@pytest.fixture(scope="session")
def bench_squat_matches(bench_result):
    return bench_result.squat_matches
