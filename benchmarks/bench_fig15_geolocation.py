"""Fig 15: hosting countries of verified squatting-phishing sites.

Paper: 1,021 resolvable IPs across 53 countries; the US hosts the most
(494), followed by Germany (106), Great Britain (77), France (44), ...

The series now comes from the bulk-enrichment table (one ``np.bincount``
over the interned country column) instead of a per-domain registry walk;
the bench asserts both paths produce the identical histogram.
"""

from repro.analysis.figures import (
    geolocation_histogram,
    geolocation_histogram_from_table,
)
from repro.analysis.render import bar_chart

from exhibits import print_exhibit


def test_fig15_geolocation(benchmark, bench_result, bench_world):
    table = bench_result.enrichment
    assert table is not None
    verified = bench_result.verified_domains()

    histogram = benchmark(geolocation_histogram_from_table, table, verified)

    # the registry-walk path over the same domains (zone A records; names
    # without a resolvable record count as "??" in both paths)
    records = [bench_world.zone.get(domain) for domain in verified]
    ips = [record.ip if record is not None else "" for record in records]
    assert histogram == geolocation_histogram(bench_world.geoip, ips)

    top = dict(list(histogram.items())[:12])
    print_exhibit("Fig 15 - phishing hosting countries (top 12)",
                  bar_chart(top, width=40))

    countries = list(histogram)
    assert countries[0] == "US"                       # US hosts the most
    assert histogram["US"] >= 2 * histogram.get("DE", 1)  # then DE, far behind
    assert len(countries) >= 8                        # widely spread
