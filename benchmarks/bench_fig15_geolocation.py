"""Fig 15: hosting countries of verified squatting-phishing sites.

Paper: 1,021 resolvable IPs across 53 countries; the US hosts the most
(494), followed by Germany (106), Great Britain (77), France (44), ...
"""

from repro.analysis.figures import geolocation_histogram
from repro.analysis.render import bar_chart

from exhibits import print_exhibit


def test_fig15_geolocation(benchmark, bench_result, bench_world):
    verified = set(bench_result.verified_domains())
    ips = [record.ip for record in bench_world.phishing_sites
           if record.domain in verified]

    histogram = benchmark(geolocation_histogram, bench_world.geoip, ips)

    top = dict(list(histogram.items())[:12])
    print_exhibit("Fig 15 - phishing hosting countries (top 12)",
                  bar_chart(top, width=40))

    countries = list(histogram)
    assert countries[0] == "US"                       # US hosts the most
    assert histogram["US"] >= 2 * histogram.get("DE", 1)  # then DE, far behind
    assert len(countries) >= 8                        # widely spread
