"""Scaling sweep: the execution engine's worker counts and capture cache.

The paper's system is explicitly at-scale — a 224M-record snapshot scan
(§3.1) and a 657K-domain distributed crawl (§3.2) — so the reproduction's
execution engine (``repro.perf``) must show its speedups *without*
changing a single output byte.  This bench sweeps:

* crawl workers 1/2/4/8 with the capture cache on;
* cache off at 1 and 4 workers (the uncached baseline);

over a fresh default-scale world per configuration, then asserts the
determinism contract (identical ``CrawlSnapshot.digest()`` and verified
domains everywhere), a nonzero cache hit rate, and the headline ≥2×
end-to-end speedup of the tuned configuration (4 workers + cache) over
the serial uncached baseline.  A ``BENCH_scaling.json`` summary is
written for the perf trajectory; CI runs the smoke scale
(``SCALING_BENCH_SCALE=smoke``) and archives the JSON as an artifact.

Environment knobs:
    SCALING_BENCH_SCALE  "default" (400-squat world, full sweep + speedup
                         assertion) or "smoke" (tiny world, workers {1,2},
                         determinism assertions only).
    SCALING_BENCH_OUT    summary path (default: BENCH_scaling.json in cwd).
"""

import json
import os
import time

from repro.analysis.render import table
from repro.core import PipelineConfig, SquatPhi
from repro.phishworld.world import WorldConfig, build_world

from exhibits import print_exhibit

SCALE = os.environ.get("SCALING_BENCH_SCALE", "default")
OUT_PATH = os.environ.get("SCALING_BENCH_OUT", "BENCH_scaling.json")

if SCALE == "smoke":
    WORLD = dict(n_organic_domains=80, n_squat_domains=80,
                 n_phish_domains=8, phishtank_reports=30)
    CACHED_WORKERS = (1, 2)
    UNCACHED_WORKERS = (1,)
    SPEEDUP_FLOOR = None  # too small to time meaningfully
else:
    WORLD = dict(n_organic_domains=400, n_squat_domains=400,
                 n_phish_domains=33, phishtank_reports=133)
    CACHED_WORKERS = (1, 2, 4, 8)
    UNCACHED_WORKERS = (1, 4)
    SPEEDUP_FLOOR = 2.0


def _run_config(crawl_workers, capture_cache):
    """One full pipeline run on a fresh world; returns the summary row."""
    world = build_world(WorldConfig(seed=1803, **WORLD))
    pipeline = SquatPhi(world, PipelineConfig(
        cv_folds=5, rf_trees=15,
        crawl_workers=crawl_workers,
        capture_cache=capture_cache,
    ))
    started = time.perf_counter()
    result = pipeline.run(follow_up_snapshots=False)
    elapsed = time.perf_counter() - started
    stats = pipeline.perf.cache
    return {
        "crawl_workers": crawl_workers,
        "capture_cache": capture_cache,
        "seconds": round(elapsed, 3),
        "crawl_digest": result.crawl_snapshots[0].digest(),
        "verified_domains": result.verified_domains(),
        "stage_seconds": {k: round(v, 3)
                          for k, v in sorted(pipeline.perf.stage_seconds.items())},
        "cache": stats.to_dict(),
    }


def test_scaling_sweep():
    rows = [_run_config(workers, True) for workers in CACHED_WORKERS]
    rows += [_run_config(workers, False) for workers in UNCACHED_WORKERS]

    print_exhibit(
        "Scaling sweep - workers x capture cache (identical outputs)",
        table(
            ["workers", "cache", "seconds", "render hit%", "spell hit%"],
            [[r["crawl_workers"], "on" if r["capture_cache"] else "off",
              f"{r['seconds']:.2f}",
              f"{100 * r['cache']['render_hit_rate']:.1f}%",
              f"{100 * r['cache']['spell_hit_rate']:.1f}%"]
             for r in rows],
        ),
    )

    baseline = next(r for r in rows
                    if r["crawl_workers"] == 1 and not r["capture_cache"])
    tuned = next(r for r in rows
                 if r["crawl_workers"] == max(CACHED_WORKERS) and r["capture_cache"])
    speedup = baseline["seconds"] / tuned["seconds"]

    summary = {
        "bench": "scaling",
        "scale": SCALE,
        "world": WORLD,
        "runs": rows,
        "speedup_tuned_vs_serial_uncached": round(speedup, 3),
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    print(f"\nwrote {OUT_PATH} (tuned speedup: {speedup:.2f}x)")

    # determinism contract: every configuration produced identical bytes
    assert len({r["crawl_digest"] for r in rows}) == 1, \
        "crawl digests diverged across worker counts / cache settings"
    assert len({tuple(r["verified_domains"]) for r in rows}) == 1, \
        "verified domains diverged across worker counts / cache settings"

    # the cache must actually absorb traffic when enabled
    for row in rows:
        if row["capture_cache"]:
            assert row["cache"]["render_hits"] > 0
            assert row["cache"]["spell_hits"] > 0
        else:
            assert row["cache"]["render_hits"] == 0
            assert row["cache"]["render_bypasses"] > 0

    # headline acceptance: tuned config at least 2x the uncached serial
    # baseline end to end (skipped at smoke scale, where runs are too
    # short to time stably)
    if SPEEDUP_FLOOR is not None:
        assert speedup >= SPEEDUP_FLOOR, \
            f"expected >= {SPEEDUP_FLOOR}x, measured {speedup:.2f}x"
