"""Table 12: blacklist coverage of verified squatting-phishing domains.

Paper (one month after detection): PhishTank 0 (0.0%), VirusTotal's 70+
lists 100 (8.5%), eCrimeX 2 (0.2%), and 1,075 (91.5%) undetected by any —
squatting phish evade the reporting ecosystem almost entirely.
"""

from repro.analysis.tables import blacklist_coverage
from repro.analysis.render import table

from exhibits import print_exhibit


def test_table12_blacklist_evasion(benchmark, bench_result, bench_world):
    domains = bench_result.verified_domains()
    rows = benchmark(blacklist_coverage, bench_world.blacklists, domains, 30)

    print_exhibit(
        "Table 12 - blacklist detection of squatting phishing (day 30)",
        table(["blacklist", "detected", "rate"],
              [[r.service, f"{r.detected}/{r.total}", f"{100 * r.rate:.1f}%"]
               for r in rows]),
    )

    by_name = {r.service: r for r in rows}
    assert by_name["Not Detected"].rate > 0.80        # paper: 91.5%
    assert by_name["PhishTank"].rate < 0.05           # paper: 0.0%
    assert by_name["eCrimeX"].rate < 0.08             # paper: 0.2%
    assert by_name["VirusTotal"].rate < 0.25          # paper: 8.5%
    assert by_name["VirusTotal"].detected >= by_name["PhishTank"].detected
