"""Table 11: evasion behaviour — squatting vs non-squatting phishing.

Paper: squatting phish obfuscate layout more (28.4±11.8 vs 21.0±12.3 hash
distance) and strings far more often (68.1% vs 35.9%); code obfuscation is
similar or slightly lower (34.0% vs 37.5%).
"""

from repro.analysis import measure_evasion
from repro.analysis.render import table

from exhibits import print_exhibit


def test_table11_evasion_comparison(benchmark, bench_result):
    squat = benchmark(measure_evasion, bench_result.evasion_squatting,
                      "Squatting-Web")
    reported = measure_evasion(bench_result.evasion_reported, "Non-Squatting")

    print_exhibit(
        "Table 11 - evasion adoption, squatting vs non-squatting phishing",
        table(
            ["population", "n", "layout obf", "string obf", "code obf"],
            [[s.population, s.count,
              f"{s.layout_mean:.1f} ± {s.layout_std:.1f}",
              f"{100 * s.string_rate:.1f}%", f"{100 * s.code_rate:.1f}%"]
             for s in (squat, reported)],
        ),
    )

    # string obfuscation: squatting ~68% vs non-squatting ~36%
    assert 0.55 < squat.string_rate < 0.80
    assert 0.25 < reported.string_rate < 0.48
    assert squat.string_rate > reported.string_rate + 0.15
    # layout distances: squatting at least as obfuscated
    assert squat.layout_mean >= reported.layout_mean - 2.0
    assert squat.layout_mean > 15
    # code obfuscation is in the same band for both (~34-38%)
    assert abs(squat.code_rate - reported.code_rate) < 0.20
