"""Table 3: brands whose squats most often redirect to the original site.

Paper: Shutterfly, Alliancebank, Rabobank, Priceline, Carfax lead — brands
(often banks/health) that defensively registered their own squat space and
bounce users back to the real site.
"""

from repro.analysis.tables import brand_redirect_rows
from repro.analysis.render import table

from exhibits import print_exhibit

PAPER_DEFENSIVE = {"shutterfly", "alliancebank", "rabobank", "priceline", "carfax"}


def test_table03_defensive_redirects(benchmark, bench_result, bench_world):
    snapshot = bench_result.crawl_snapshots[0]
    rows = benchmark(
        brand_redirect_rows, snapshot, bench_result.squat_matches,
        bench_world.catalog, "original", 5, 3,
    )

    print_exhibit(
        "Table 3 - brands redirecting squats to their original site",
        table(
            ["brand", "redirecting", "share of live", "original", "market", "other"],
            [[r.brand, r.redirecting, f"{100 * r.redirect_share:.0f}%",
              f"{r.original} ({100 * r.original / r.redirecting:.0f}%)",
              r.market, r.other] for r in rows],
        ),
    )

    assert rows, "no redirecting brands found"
    head = {r.brand for r in rows}
    assert head & PAPER_DEFENSIVE           # the defensive brands surface
    top = rows[0]
    assert top.original / top.redirecting > 0.5   # paper: 45-68% to original
