"""Ablation: confusable-table completeness (the DNSTwist comparison).

§3.1 motivates a fuller unicode-confusables table: DNSTwist maps only 13 of
the 23 look-alikes of "a", so it misses IDN homograph squats.  We generate
homograph candidates with the full table, then measure how many a
DNSTwist-sized table can still detect.
"""

from repro.squatting.confusables import dnstwist_subset
from repro.squatting.homograph import HomographModel
from repro.analysis.render import table

from exhibits import print_exhibit

BRANDS = ("google", "facebook", "paypal", "amazon", "apple", "microsoft")


def homograph_recall(reduced_model, full_model, label):
    universe = sorted(full_model.generate_idn(label))
    if not universe:
        return 1.0, 0
    reduced_pool = reduced_model.generate_idn(label)
    caught = sum(1 for candidate in universe if candidate in reduced_pool)
    return caught / len(universe), len(universe)


def test_ablation_confusable_coverage(benchmark):
    full = HomographModel()
    reduced = HomographModel(confusables=dnstwist_subset())

    rows = []
    recalls = []
    for brand in BRANDS:
        recall, universe = benchmark.pedantic(
            homograph_recall, args=(reduced, full, brand),
            rounds=1, iterations=1,
        ) if brand == BRANDS[0] else homograph_recall(reduced, full, brand)
        rows.append([brand, universe, f"{100 * recall:.1f}%"])
        recalls.append(recall)

    print_exhibit(
        "Ablation - DNSTwist-sized confusable table vs full table",
        table(["brand", "IDN homograph candidates", "reduced-table recall"], rows),
    )

    mean_recall = sum(recalls) / len(recalls)
    # the reduced table loses a substantial share of homograph space, which
    # is exactly the paper's criticism (13/23 ≈ 57% for "a")
    assert mean_recall < 0.80
    assert mean_recall > 0.30
