"""Fig 2: number of squatting domains per squatting type.

Paper: combo 371,354 (56%) >> typo 166,152 (25%) > bits 48,097 (7.3%) >
wrongTLD 39,414 (6.0%) > homograph 32,646 (5.0%).  The bench times the
full-zone squat scan and asserts the ordering/shares.
"""

from repro.analysis.figures import squat_type_histogram
from repro.analysis.render import bar_chart
from repro.squatting.detector import SquattingDetector

from exhibits import print_exhibit


def test_fig02_squat_type_distribution(benchmark, bench_world):
    detector = SquattingDetector(bench_world.catalog)

    matches = benchmark.pedantic(
        detector.scan, args=(bench_world.zone,), rounds=1, iterations=1,
    )
    histogram = squat_type_histogram(matches)
    total = sum(histogram.values())

    print_exhibit(
        "Fig 2 - squatting domains by type",
        bar_chart(histogram, width=40) + f"\ntotal: {total}",
    )

    # shape: combo majority, typo second, each ≳ the paper's proportions
    assert histogram["combo"] == max(histogram.values())
    assert 0.40 < histogram["combo"] / total < 0.70          # paper 56%
    assert histogram["typo"] > histogram["bits"]
    assert histogram["typo"] > histogram["homograph"]
    assert all(count > 0 for count in histogram.values())
