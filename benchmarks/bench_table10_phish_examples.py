"""Table 10: example verified phishing domains per brand and squat type.

Paper rows include goog1e.nl (homograph), goofle.com.ua (bits),
facebook-c.com (combo), face-book.online (typo), go-uberfreight.com,
mobile-adp.com, live-microsoftsupport.com, apple-prizeuk.com, ... — the
bench checks the seeded case studies come out of the pipeline verified with
the right type labels.
"""

from repro.analysis.tables import example_phish_domains
from repro.analysis.render import table

from exhibits import print_exhibit

EXPECTED_CASES = {
    "goog1e.nl": ("google", "homograph"),
    "goofle.com.ua": ("google", "bits"),
    "facebook-c.com": ("facebook", "combo"),
    "face-book.online": ("facebook", "typo"),
    "go-uberfreight.com": ("uber", "combo"),
    "mobile-adp.com": ("adp", "combo"),
    "live-microsoftsupport.com": ("microsoft", "combo"),
    "apple-prizeuk.com": ("apple", "combo"),
    "get-bitcoin.com": ("bitcoin", "combo"),
    "paypal-cash.com": ("paypal", "combo"),
}


def test_table10_phish_examples(benchmark, bench_result):
    rows = benchmark(example_phish_domains, bench_result.verified, 3)

    print_exhibit(
        "Table 10 - example squatting phishing domains (first 20)",
        table(["brand", "domain", "type"], rows[:20]),
    )

    verified = {v.domain: v for v in bench_result.verified}
    found = 0
    for domain, (brand, squat_type) in EXPECTED_CASES.items():
        record = verified.get(domain)
        if record is None:
            continue  # a couple may fall to classifier FN, like the paper's
        found += 1
        assert record.brand == brand, domain
        assert record.squat_type.value == squat_type, domain
    assert found >= 0.7 * len(EXPECTED_CASES)
