"""Fig 5 + Table 5 head: accumulated % of PhishTank URLs from top brands.

Paper: 6,755 URLs across 138 brands; the top 8 brands cover 59.1% of all
reported URLs (paypal 19.3%, facebook 15.6%, microsoft 8.6%, ...).
"""

from repro.analysis.render import curve

from exhibits import print_exhibit


def accumulation(feed):
    grouped = feed.by_brand()
    counts = sorted((len(v) for v in grouped.values()), reverse=True)
    total = sum(counts)
    out = []
    running = 0
    for count in counts:
        running += count
        out.append(100.0 * running / total)
    return out


def test_fig05_phishtank_skew(benchmark, bench_world):
    feed = bench_world.phishtank
    points = benchmark(accumulation, feed)

    print_exhibit(
        "Fig 5 - accumulated % of PhishTank URLs vs brand rank",
        curve([(k + 1, v) for k, v in enumerate(points)],
              sample_at=(1, 4, 8, 20, 50)),
    )

    assert 0.45 < points[7] / 100.0 < 0.72   # top 8 ≈ 59%
    top = feed.top_brands(3)
    assert top[0][0] == "paypal"             # paypal leads
    assert top[1][0] == "facebook"
