"""Incremental re-execution: the artifact store must buy real wall-clock.

The paper's measurement is longitudinal — the same scan/crawl corpus gets
re-analysed as the classifier and verification evolve (§6.1 proposes
exactly this feedback loop).  The stage-graph runner makes that cheap: a
re-run against a persistent :class:`ArtifactStore` reuses every stage
whose fingerprint (code, config slice, input digests) is unchanged.  This
bench measures three walks over one store:

* **fresh** — a cold store, every stage executes;
* **resume** — identical config, everything served from the store;
* **retrain** — ``from_stage="train"``: scan/crawl/ground-truth artifacts
  are reused, the model half of the pipeline re-executes.

It asserts the determinism contract (byte-identical crawl digests and
verified domains across all three), that the reused stages really were
skipped (``PerfReport.cached_stages`` + manifest ``cached`` flags), and —
at default scale — that the retrain-only walk is measurably faster than
the fresh one.  A ``BENCH_incremental.json`` summary is written; CI runs
the smoke scale and archives it.

Environment knobs:
    INCREMENTAL_BENCH_SCALE  "default" (300-squat world, speedup floor
                             asserted) or "smoke" (tiny world, reuse +
                             determinism assertions only).
    INCREMENTAL_BENCH_OUT    summary path (default: BENCH_incremental.json).
"""

import json
import os
import tempfile
import time

from repro.analysis.render import table
from repro.core import PipelineConfig, SquatPhi
from repro.phishworld.world import WorldConfig, build_world
from repro.stages import ArtifactStore

from exhibits import print_exhibit

SCALE = os.environ.get("INCREMENTAL_BENCH_SCALE", "default")
OUT_PATH = os.environ.get("INCREMENTAL_BENCH_OUT", "BENCH_incremental.json")

if SCALE == "smoke":
    WORLD = dict(n_organic_domains=80, n_squat_domains=80,
                 n_phish_domains=8, phishtank_reports=30)
    SPEEDUP_FLOOR = None  # too small to time meaningfully
else:
    WORLD = dict(n_organic_domains=300, n_squat_domains=300,
                 n_phish_domains=25, phishtank_reports=100)
    SPEEDUP_FLOOR = 1.2

EXECUTED_STAGES = ("scan", "crawl", "ground_truth", "train",
                   "classify", "verify", "evasion")
REUSED_ON_RETRAIN = ("scan", "crawl", "ground_truth")


def _make_pipeline():
    world = build_world(WorldConfig(seed=1803, **WORLD))
    return SquatPhi(world, PipelineConfig(cv_folds=5, rf_trees=15))


def _walk(store, label, **run_kwargs):
    """One pipeline walk against the shared store; returns a summary row."""
    pipeline = _make_pipeline()
    started = time.perf_counter()
    result = pipeline.run(follow_up_snapshots=False, store=store,
                          **run_kwargs)
    elapsed = time.perf_counter() - started
    return {
        "walk": label,
        "run_id": result.run_id,
        "seconds": round(elapsed, 3),
        "crawl_digest": result.crawl_snapshots[0].digest(),
        "verified_domains": result.verified_domains(),
        "cached_stages": sorted(pipeline.perf.cached_stages),
        "executed_stages": sorted(pipeline.perf.stage_seconds),
        "manifest_cached": sorted(pipeline.last_manifest.cached_stages()),
    }


def test_incremental_rerun():
    with tempfile.TemporaryDirectory() as store_dir:
        store = ArtifactStore(store_dir)
        fresh = _walk(store, "fresh")
        resume = _walk(store, "resume", resume=fresh["run_id"])
        retrain = _walk(store, "retrain", resume=fresh["run_id"],
                        from_stage="train")

    rows = [fresh, resume, retrain]
    print_exhibit(
        "Incremental re-runs - one artifact store, three walks",
        table(
            ["walk", "seconds", "cached stages", "executed stages"],
            [[r["walk"], f"{r['seconds']:.2f}",
              ",".join(r["cached_stages"]) or "-",
              ",".join(r["executed_stages"]) or "-"]
             for r in rows],
        ),
    )

    speedup = fresh["seconds"] / max(retrain["seconds"], 1e-9)
    summary = {
        "bench": "incremental",
        "scale": SCALE,
        "world": WORLD,
        "walks": rows,
        "speedup_retrain_vs_fresh": round(speedup, 3),
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    print(f"\nwrote {OUT_PATH} (retrain-only speedup: {speedup:.2f}x)")

    # determinism contract: all three walks produced identical bytes
    assert len({r["crawl_digest"] for r in rows}) == 1, \
        "crawl digests diverged across fresh/resume/retrain walks"
    assert len({tuple(r["verified_domains"]) for r in rows}) == 1, \
        "verified domains diverged across fresh/resume/retrain walks"

    # the reuse actually happened, visible in both perf and the manifest
    assert fresh["cached_stages"] == []
    assert fresh["executed_stages"] == sorted(EXECUTED_STAGES)
    assert resume["cached_stages"] == sorted(EXECUTED_STAGES)
    assert resume["executed_stages"] == []
    assert retrain["cached_stages"] == sorted(REUSED_ON_RETRAIN)
    assert retrain["manifest_cached"] == sorted(REUSED_ON_RETRAIN)
    for stage in ("train", "classify", "verify", "evasion"):
        assert stage in retrain["executed_stages"]

    # reusing scan+crawl+ground_truth must be measurably faster end to
    # end (skipped at smoke scale, where runs are too short to time)
    if SPEEDUP_FLOOR is not None:
        assert speedup >= SPEEDUP_FLOOR, \
            f"expected >= {SPEEDUP_FLOOR}x, measured {speedup:.2f}x"
