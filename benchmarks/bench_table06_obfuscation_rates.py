"""Table 6: string- and code-obfuscation rates per brand (ground truth).

Paper (share of each brand's valid phishing pages): string obfuscation from
100% (santander) down to 8.9% (ebay); code obfuscation from 46.6%
(facebook) down to 1.5% (dropbox).  Shape: both behaviours are widespread
and highly brand-dependent.
"""

from repro.analysis.evasion import per_brand_obfuscation_rates
from repro.analysis.render import table

from exhibits import print_exhibit


def test_table06_obfuscation_rates(benchmark, bench_result):
    rates = benchmark(per_brand_obfuscation_rates, bench_result.evasion_reported)

    rows = [(brand, s, c, n) for brand, (s, c, n) in rates.items() if n >= 5]
    print_exhibit(
        "Table 6 - obfuscation rates per brand (PhishTank ground truth)",
        table(["brand", "string obf", "code obf", "pages"],
              [[brand, f"{100 * s:.1f}%", f"{100 * c:.1f}%", n]
               for brand, s, c, n in rows[:10]]),
    )

    assert rows
    string_rates = [s for _, s, _, _ in rows]
    code_rates = [c for _, _, c, _ in rows]
    # aggregate rates near the paper's non-squatting row of Table 11
    mean_string = sum(string_rates) / len(string_rates)
    mean_code = sum(code_rates) / len(code_rates)
    assert 0.2 < mean_string < 0.55       # paper aggregate: 35.9%
    assert 0.2 < mean_code < 0.55         # paper aggregate: 37.5%
    # strong brand-to-brand variation, as in the paper
    assert max(string_rates) - min(string_rates) > 0.15
