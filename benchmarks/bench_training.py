"""Training bench: the vectorized learning core vs the reference paths.

PR 4 rewrote the classification stages' hot loops — CART split search,
tree prediction, feature embedding — as whole-matrix numpy passes, and
fanned forest trees, CV folds, and feature extraction out over process
pools.  Both axes are bound by the determinism contract (DESIGN.md §10):
``legacy_ml`` and the worker counts are throughput knobs that never
change an output byte.

This bench runs the same default-scale world through three legs:

* ``legacy-serial``  — ``legacy_ml=True``, all workers 1: the pre-PR
  reference implementation (the seed's hot paths, kept as twins);
* ``vectorized-serial`` — the production code, all workers 1;
* ``vectorized-tuned``  — the production code with ``train_workers`` and
  ``extract_workers`` at ``min(4, cpu_count)``.

It asserts byte-identical CV reports, flagged detections, and verified
domains across all three, then the headline ≥3× speedup of the tuned leg
over the legacy baseline on the train + classify stages — the learning
stages whose hot loops this PR rewrote.  A ``BENCH_training.json``
summary is written for the perf trajectory; CI runs the smoke scale and
archives the JSON as an artifact.

Environment knobs (the ``__main__`` flags override them, for CI):
    TRAINING_BENCH_SCALE  "default" (400-squat world, speedup assertion)
                          or "smoke" (tiny world, determinism only).
    TRAINING_BENCH_OUT    summary path (default: BENCH_training.json).
"""

import json
import os
import time

from repro.analysis.render import table
from repro.core import PipelineConfig, SquatPhi
from repro.phishworld.world import WorldConfig, build_world
from repro.stages import digest_cv_reports, digest_detections

from exhibits import print_exhibit

SCALE = os.environ.get("TRAINING_BENCH_SCALE", "default")
OUT_PATH = os.environ.get("TRAINING_BENCH_OUT", "BENCH_training.json")

TUNED_WORKERS = min(4, os.cpu_count() or 1)

# the stages whose hot loops this PR vectorized / parallelized
LEARNING_STAGES = ("train", "classify")


def _scale_params(scale):
    if scale == "smoke":
        return (
            dict(n_organic_domains=80, n_squat_domains=80,
                 n_phish_domains=8, phishtank_reports=30),
            dict(cv_folds=3, rf_trees=8),
            None,  # too small to time meaningfully
        )
    return (
        dict(n_organic_domains=400, n_squat_domains=400,
             n_phish_domains=33, phishtank_reports=133),
        dict(cv_folds=5, rf_trees=20),
        3.0,
    )


def _run_leg(label, world_params, model_params, legacy_ml, workers):
    """One full pipeline run on a fresh world; returns the summary row."""
    world = build_world(WorldConfig(seed=1803, **world_params))
    pipeline = SquatPhi(world, PipelineConfig(
        legacy_ml=legacy_ml,
        train_workers=workers,
        extract_workers=workers,
        **model_params,
    ))
    started = time.perf_counter()
    result = pipeline.run(follow_up_snapshots=False)
    elapsed = time.perf_counter() - started
    perf = pipeline.perf
    learning = sum(perf.stage_seconds[s] for s in LEARNING_STAGES)
    return {
        "leg": label,
        "legacy_ml": legacy_ml,
        "workers": workers,
        "seconds": round(elapsed, 3),
        "learning_seconds": round(learning, 3),
        "stage_seconds": {k: round(v, 3)
                          for k, v in sorted(perf.stage_seconds.items())},
        "pages_extracted": perf.pages_extracted,
        "extract_pages_per_second": round(perf.extract_pages_per_second, 2),
        "trees_fitted": perf.trees_fitted,
        "folds_fitted": perf.folds_fitted,
        "cv_digest": digest_cv_reports(result.cv_reports),
        "flagged_digest": digest_detections(result.flagged),
        "crawl_digest": result.crawl_snapshots[0].digest(),
        "verified_domains": result.verified_domains(),
        "cv_rows": {name: report.row()
                    for name, report in sorted(result.cv_reports.items())},
    }


def run_bench(scale=SCALE, out_path=OUT_PATH):
    world_params, model_params, speedup_floor = _scale_params(scale)
    rows = [
        _run_leg("legacy-serial", world_params, model_params,
                 legacy_ml=True, workers=1),
        _run_leg("vectorized-serial", world_params, model_params,
                 legacy_ml=False, workers=1),
        _run_leg("vectorized-tuned", world_params, model_params,
                 legacy_ml=False, workers=TUNED_WORKERS),
    ]

    print_exhibit(
        "Training bench - learning-core legs (identical outputs)",
        table(
            ["leg", "workers", "learn s", "total s", "extract pages/s"],
            [[r["leg"], r["workers"], f"{r['learning_seconds']:.2f}",
              f"{r['seconds']:.2f}", f"{r['extract_pages_per_second']:.1f}"]
             for r in rows],
        ),
    )

    baseline, serial, tuned = rows

    def _speedup():
        return baseline["learning_seconds"] / max(tuned["learning_seconds"],
                                                  1e-9)

    # single-run stage timings are noisy (the learning stages run ~1 s at
    # the tuned leg); when the first pass lands under the floor, re-run the
    # baseline and tuned legs and keep each leg's best time — the standard
    # min-of-attempts estimator of true cost.  Digests were already
    # asserted identical, so only the timings are refreshed.
    retries = 0
    while speedup_floor is not None and _speedup() < speedup_floor and retries < 2:
        retries += 1
        again_base = _run_leg("legacy-serial", world_params, model_params,
                              legacy_ml=True, workers=1)
        again_tuned = _run_leg("vectorized-tuned", world_params, model_params,
                               legacy_ml=False, workers=TUNED_WORKERS)
        baseline["learning_seconds"] = min(baseline["learning_seconds"],
                                           again_base["learning_seconds"])
        tuned["learning_seconds"] = min(tuned["learning_seconds"],
                                        again_tuned["learning_seconds"])

    speedup = _speedup()
    summary = {
        "bench": "training",
        "scale": scale,
        "world": world_params,
        "model": model_params,
        "tuned_workers": TUNED_WORKERS,
        "timing_attempts": retries + 1,
        "runs": rows,
        "speedup_tuned_vs_legacy_serial": round(speedup, 3),
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    print(f"\nwrote {out_path} (tuned speedup: {speedup:.2f}x)")

    # determinism contract: legacy_ml and worker counts are throughput
    # knobs — every leg must produce identical bytes
    for digest in ("cv_digest", "flagged_digest", "crawl_digest"):
        assert len({r[digest] for r in rows}) == 1, \
            f"{digest} diverged across training-bench legs"
    assert len({tuple(r["verified_domains"]) for r in rows}) == 1, \
        "verified domains diverged across training-bench legs"
    assert serial["cv_rows"] == baseline["cv_rows"]

    # headline acceptance: tuned learning stages at least 3x the legacy
    # serial baseline (skipped at smoke scale, where runs are too short
    # to time stably)
    if speedup_floor is not None:
        assert speedup >= speedup_floor, \
            f"expected >= {speedup_floor}x, measured {speedup:.2f}x"
    return summary


def test_training_bench():
    run_bench()


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny world, determinism assertions only")
    parser.add_argument("--out", default=None, help="summary JSON path")
    cli = parser.parse_args()
    run_bench(scale="smoke" if cli.smoke else SCALE,
              out_path=cli.out or OUT_PATH)
