"""Fig 13: the top brands targeted by squatting phishing.

Paper: google stands out with 194 pages across web and mobile — several
times the runner-up (all others ≤ ~40); ford, facebook, bitcoin, amazon,
apple fill the head of the list, with a ~70-brand tail.
"""

from repro.analysis.figures import top_targeted_brands
from repro.analysis.render import table

from exhibits import print_exhibit


def test_fig13_top_targeted_brands(benchmark, bench_result):
    rows = benchmark(top_targeted_brands, bench_result.verified, 70)

    print_exhibit(
        "Fig 13 - top targeted brands (first 15 shown)",
        table(["brand", "web", "mobile"],
              [[brand, web, mobile] for brand, web, mobile in rows[:15]]),
    )

    assert rows[0][0] == "google"
    google_total = rows[0][1] + rows[0][2]
    runner_up_total = rows[1][1] + rows[1][2]
    assert google_total >= 2 * runner_up_total      # paper: ~5x
    # a long tail of targeted brands exists
    assert len(rows) >= 15
