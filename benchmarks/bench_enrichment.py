"""Enrichment bench: the event-loop resolver vs the serial reference.

PR 6 added :mod:`repro.enrich` — an event-loop bulk resolver driving
MX/A/WHOIS/GeoIP lookups through bounded concurrency, retry ladders,
per-(backend, host) circuit breakers, hedged duplicate requests, and a
negative cache — bound by the determinism contract: faults, concurrency,
hedging, and caching are throughput/robustness knobs that never change a
table byte.

This bench synthesizes registries at a few thousand domains (~5% absent
from the zone, so NXDOMAIN paths and the negative cache are exercised)
and runs the same enrichment through:

* ``serial-0%``      — ``enrich_serial`` with no fault plan: THE oracle
  every other leg must match byte for byte;
* ``serial-R%``      — the serial reference under fault weather (the
  baseline the speedup floor is measured against);
* ``resolver-W-R%``  — the event loop at workers {1, 8, 64} under fault
  rates {0%, 5%, 20%}, plus a hedging-off leg.

Timing note: both paths simulate I/O on a virtual clock, so wall-clock
legs compare *engine overhead per task* — the resolver's fast path and
bulk backend fills against the serial GuardedCall machinery — while
``sim_seconds`` reports the simulated makespan hedging/concurrency win.
It asserts identical table digests across every leg, then the headline
number: resolver throughput (host-clock enrichments/sec) >= 3x the
serial reference at the 5% fault rate (min-of-attempts timing, as in
``bench_training.py``).  A ``BENCH_enrichment.json`` summary is written
for the perf trajectory; CI runs the smoke scale and archives the JSON.

Environment knobs (the ``__main__`` flags override them, for CI):
    ENRICH_BENCH_SCALE  "default" (4000 domains, speedup floor asserted)
                        or "smoke" (600 domains, digest equality only).
    ENRICH_BENCH_OUT    summary path (default: BENCH_enrichment.json).
"""

import json
import os
import time

import numpy as np

from repro.analysis.render import table
from repro.dns.zone import ZoneStore
from repro.enrich import EnrichResolver, default_backends, enrich_serial
from repro.faults.plan import FaultPlan
from repro.phishworld.geoip import GeoIPRegistry
from repro.phishworld.whois import WhoisRegistry

from exhibits import print_exhibit
from timing import gc_paused, merge_best

SCALE = os.environ.get("ENRICH_BENCH_SCALE", "default")
OUT_PATH = os.environ.get("ENRICH_BENCH_OUT", "BENCH_enrichment.json")

WORKER_COUNTS = (1, 8, 64)
FAULT_RATES = (0.0, 0.05, 0.2)
ABSENT_RATE = 0.05       # names enriched but never registered -> NXDOMAIN
TLDS = ("com", "net", "org", "pw", "top")

_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def _scale_params(scale):
    """(domains, speedup_floor) per scale."""
    if scale == "smoke":
        return 600, None
    return 4_000, 3.0


# ----------------------------------------------------------------------
# synthetic registries
# ----------------------------------------------------------------------

def synth_registries(n_domains, seed=1803):
    """(domains, zone, whois, geoip): a shape-faithful enrichment corpus.

    ~95% of the domains are registered with an allocated IP and WHOIS
    data (phishing-skewed years/registrars for a third of them); the
    rest never enter the zone, so every backend's NXDOMAIN path and the
    shared negative cache see real traffic.
    """
    rng = np.random.default_rng(seed)
    labels = set()
    while len(labels) < n_domains:
        length = int(rng.integers(6, 14))
        labels.add("".join(
            _ALPHABET[i] for i in rng.integers(0, len(_ALPHABET), length)))
    domains = sorted(
        f"{label}.{TLDS[int(rng.integers(0, len(TLDS)))]}"
        for label in labels)

    zone = ZoneStore()
    whois = WhoisRegistry(rng)
    geoip = GeoIPRegistry(rng)
    absent = rng.random(len(domains)) < ABSENT_RATE
    phishy = rng.random(len(domains)) < 0.33
    for domain, skip, is_phish in zip(domains, absent, phishy):
        if skip:
            continue
        if is_phish:
            ip = geoip.allocate_phishing_ip()
            whois.register_phishing(domain)
        else:
            ip = geoip.allocate_benign_ip()
            whois.register_organic(domain)
        zone.add_name(domain, ip=ip)
    return domains, zone, whois, geoip


# ----------------------------------------------------------------------
# legs
# ----------------------------------------------------------------------

def _leg_serial(label, domains, backends, plan):
    started = time.perf_counter()
    table_, health = enrich_serial(domains, backends, plan)
    elapsed = time.perf_counter() - started
    tasks = len(table_) * len(backends)
    return {
        "leg": label,
        "seconds": round(elapsed, 4),
        "tasks": tasks,
        "enrichments_per_second": round(tasks / max(elapsed, 1e-9)),
        "retries": health.retries,
        "sim_seconds": None,
        "digest": table_.digest(),
    }


def _leg_resolver(label, domains, backends, plan, workers, hedging=True):
    resolver = EnrichResolver(backends, plan, concurrency=workers,
                              hedging=hedging)
    started = time.perf_counter()
    table_ = resolver.resolve(domains)
    elapsed = time.perf_counter() - started
    stats = resolver.stats
    return {
        "leg": label,
        "seconds": round(elapsed, 4),
        "tasks": stats.tasks,
        "enrichments_per_second": round(stats.tasks / max(elapsed, 1e-9)),
        "retries": stats.retries,
        "hedges_fired": stats.hedges_fired,
        "negcache_hits": stats.negcache_hits,
        "sim_seconds": round(stats.sim_seconds, 2),
        "digest": table_.digest(),
    }


# ----------------------------------------------------------------------
# bench driver
# ----------------------------------------------------------------------

def run_bench(scale=SCALE, out_path=OUT_PATH):
    # collector pauses land randomly across legs otherwise, and the legs
    # are short enough for one pause to flip the speedup ratio
    with gc_paused():
        return _run_bench(scale, out_path)


def _run_bench(scale, out_path):
    n_domains, speedup_floor = _scale_params(scale)

    print(f"synthesizing registries for {n_domains} domains "
          f"({scale} scale) ...")
    domains, zone, whois, geoip = synth_registries(n_domains)
    backends = default_backends(zone, whois, geoip)

    def plan_for(rate, seed=1803):
        return FaultPlan.uniform(rate, seed=seed) if rate else None

    rows = [_leg_serial("serial-0%", domains, backends, None)]
    reference = rows[0]["digest"]
    comparator = _leg_serial("serial-5%", domains, backends, plan_for(0.05))
    rows.append(comparator)
    resolver_5 = None
    for rate in FAULT_RATES:
        for workers in WORKER_COUNTS:
            leg = _leg_resolver(
                f"resolver-{workers}-{int(rate * 100)}%",
                domains, backends, plan_for(rate), workers)
            rows.append(leg)
            if rate == 0.05 and workers == 8:
                resolver_5 = leg
    rows.append(_leg_resolver("resolver-8-20%-nohedge", domains, backends,
                              plan_for(0.2), 8, hedging=False))
    # a different fault seed must also leave the table untouched
    resolver = EnrichResolver(backends, FaultPlan.uniform(0.2, seed=99),
                              concurrency=8)
    assert resolver.resolve(domains).digest() == reference, \
        "fault seed leaked into the enrichment table"

    print_exhibit(
        "Enrichment bench - legs (identical tables)",
        table(
            ["leg", "seconds", "enrich/s", "retries", "sim s"],
            [[r["leg"], f"{r['seconds']:.3f}", r["enrichments_per_second"],
              r["retries"], r["sim_seconds"] if r["sim_seconds"] is not None
              else "-"] for r in rows],
        ),
    )

    def _speedup():
        return comparator["seconds"] / max(resolver_5["seconds"], 1e-9)

    # single-run wall clocks are noisy; min-of-5 on the two headline
    # legs (see bench_training.py)
    attempts = 1
    while speedup_floor is not None and attempts < 5:
        attempts += 1
        again_serial = _leg_serial("serial-5%", domains, backends,
                                   plan_for(0.05))
        again_resolver = _leg_resolver("resolver-8-5%", domains, backends,
                                       plan_for(0.05), 8)
        merge_best(comparator, again_serial)
        merge_best(resolver_5, again_resolver)

    speedup = _speedup()
    summary = {
        "bench": "enrichment",
        "scale": scale,
        "domains": n_domains,
        "tasks": rows[0]["tasks"],
        "timing_attempts": attempts,
        "runs": rows,
        "speedup_resolver8_vs_serial_at_5pct": round(speedup, 3),
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    print(f"\nwrote {out_path} (resolver-8 @5% speedup: {speedup:.2f}x)")

    # determinism contract: every leg must reproduce the serial no-fault
    # oracle's table byte for byte
    for row in rows:
        assert row["digest"] == reference, \
            f"{row['leg']} diverged from the serial no-fault oracle"

    # headline acceptance (skipped at smoke scale: too short to time)
    if speedup_floor is not None:
        assert speedup >= speedup_floor, (
            f"expected >= {speedup_floor}x enrichment speedup at 5% faults, "
            f"measured {speedup:.2f}x")
    return summary


def test_enrichment_bench():
    run_bench()


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="600 domains, digest-equality assertions only")
    parser.add_argument("--out", default=None, help="summary JSON path")
    cli = parser.parse_args()
    run_bench(scale="smoke" if cli.smoke else SCALE,
              out_path=cli.out or OUT_PATH)
