"""Fig 3: accumulated % of squatting domains from top brands.

Paper: the distribution is highly skewed — the top 20 brands account for
more than 30% of all squatting domains.  The bench times the accumulation
analysis and asserts the skew.
"""

from repro.analysis.figures import brand_accumulation_curve
from repro.analysis.render import curve

from exhibits import print_exhibit


def test_fig03_brand_skew(benchmark, bench_squat_matches):
    points = benchmark(brand_accumulation_curve, bench_squat_matches)

    indexed = list(enumerate(points, start=1))
    print_exhibit(
        "Fig 3 - accumulated % of squatting domains vs brand rank",
        curve([(k, v) for k, v in indexed],
              sample_at=(1, 5, 10, 20, 50, 100, 200)),
    )

    assert points[19] > 30.0          # top 20 brands cover > 30%
    assert points[-1] == max(points)  # monotone accumulation to 100%
    assert abs(points[-1] - 100.0) < 1e-9
