"""Table 9: per-brand predicted vs verified squatting phishing pages.

Paper rows (15 example brands): google 112 predicted web / 105 verified
(94%), facebook 21/18, apple 20/8, bitcoin 19/16, uber 16/11, ... —
precision is high for the big brands and weaker where benign plugin/survey
pages confuse the classifier.
"""

from repro.analysis.tables import brand_verification_rows
from repro.analysis.render import table

from exhibits import print_exhibit

PAPER_BRANDS = [
    "google", "facebook", "apple", "bitcoin", "uber", "youtube", "paypal",
    "citi", "ebay", "microsoft", "twitter", "dropbox", "github", "adp",
    "santander",
]


def test_table09_brand_verification(benchmark, bench_result, bench_world):
    rows = benchmark(
        brand_verification_rows, bench_result, bench_result.squat_matches,
        PAPER_BRANDS,
    )

    print_exhibit(
        "Table 9 - predicted vs verified, 15 example brands",
        table(
            ["brand", "squats", "pred web", "pred mobile", "verified web",
             "verified mobile"],
            [[r.brand, r.squat_domains, r.predicted_web, r.predicted_mobile,
              r.verified_web, r.verified_mobile] for r in rows],
        ),
    )

    by_brand = {r.brand: r for r in rows}
    google = by_brand["google"]
    assert google.verified_web + google.verified_mobile > 0
    assert google.verified_web <= google.predicted_web
    # google is the most-targeted brand in this table
    assert google.verified_web + google.verified_mobile == max(
        r.verified_web + r.verified_mobile for r in rows)
    # verification never exceeds prediction per profile
    for r in rows:
        assert r.verified_web <= r.predicted_web
        assert r.verified_mobile <= r.predicted_mobile
