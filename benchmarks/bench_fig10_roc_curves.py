"""Fig 10: ROC curves of the three classifiers.

Paper: Random Forest hugs the top-left corner; KNN close behind; NaiveBayes
clearly worse.  We recompute pooled out-of-fold scores per model and print
sampled curve points.
"""

import numpy as np

from repro.ml import roc_curve, stratified_kfold

from exhibits import print_exhibit


def pooled_scores(pipeline, x, y, model_name):
    scores = np.empty(len(y))
    for train_idx, test_idx in stratified_kfold(y, k=5):
        model = pipeline._make_model(model_name)
        model.fit(x[train_idx], y[train_idx])
        scores[test_idx] = model.predict_proba(x[test_idx])
    return scores


def tpr_at(fpr_target, fpr, tpr):
    index = np.searchsorted(fpr, fpr_target, side="right") - 1
    return tpr[max(index, 0)]


def test_fig10_roc_curves(benchmark, bench_pipeline, bench_result):
    pages = bench_result.ground_truth
    x = bench_pipeline.embedder.transform([p.features for p in pages])
    y = np.array([p.label for p in pages])

    lines = []
    curves = {}
    for name in ("naive_bayes", "knn", "random_forest"):
        scores = pooled_scores(bench_pipeline, x, y, name)
        fpr, tpr, _ = roc_curve(y, scores)
        curves[name] = (fpr, tpr)
        samples = ", ".join(
            f"tpr@fpr={f:.2f}: {tpr_at(f, fpr, tpr):.2f}"
            for f in (0.01, 0.05, 0.10, 0.25)
        )
        lines.append(f"{name:<14} {samples}")
    print_exhibit("Fig 10 - ROC curve checkpoints", "\n".join(lines))

    rf_fpr, rf_tpr = curves["random_forest"]
    nb_fpr, nb_tpr = curves["naive_bayes"]
    # RF dominates NB in the low-FPR region the paper plots
    for target in (0.05, 0.10):
        assert tpr_at(target, rf_fpr, rf_tpr) >= tpr_at(target, nb_fpr, nb_tpr) - 0.02
    assert tpr_at(0.05, rf_fpr, rf_tpr) > 0.85

    # time one ROC computation
    scores = pooled_scores(bench_pipeline, x, y, "naive_bayes")
    benchmark(roc_curve, y, scores)
