"""Fault sweep: crawl resilience across infrastructure failure rates.

The paper's crawl survives "error-prone" infrastructure at the
million-level (§3.2); this bench measures how our resilience stack holds
up as the injected compound fault rate climbs.  For each rate we crawl
the bench world's squat domains and record:

* **completion rate** — jobs that delivered a verdict (live or cleanly
  dead) instead of dead-lettering;
* **retry amplification** — visit attempts per job (1.0 = no faults);
* **breaker trips** — hosts the crawler gave up hammering.

Future PRs can track resilience regressions against these numbers.
"""

from repro.faults import FaultInjector, FaultPlan
from repro.analysis.render import table
from repro.web.crawler import DistributedCrawler

from exhibits import print_exhibit

FAULT_RATES = (0.0, 0.05, 0.2, 0.5)


def _sweep_once(host, domains, rate):
    injector = FaultInjector(FaultPlan.uniform(rate, seed=1803))
    crawler = DistributedCrawler(host, workers=20, fault_injector=injector,
                                 max_retries=3)
    snapshot = crawler.crawl(domains)
    jobs = len(snapshot.results)
    health = snapshot.health
    return {
        "rate": rate,
        "jobs": jobs,
        "completion": (jobs - health.dead_letters) / jobs,
        "amplification": health.attempts / jobs,
        "retries": health.retries,
        "breaker_trips": health.breaker_trips,
        "dead_letters": health.dead_letters,
        "backoff_seconds": health.backoff_seconds,
    }


def test_fault_sweep(benchmark, bench_world, bench_squat_matches):
    domains = sorted({m.domain for m in bench_squat_matches})[:400]

    rows = [_sweep_once(bench_world.host, domains, rate)
            for rate in FAULT_RATES[:-1]]
    # time the harshest point of the sweep; the cheap points run once above
    rows.append(benchmark(_sweep_once, bench_world.host, domains,
                          FAULT_RATES[-1]))

    print_exhibit(
        "Fault sweep - crawl resilience vs injected fault rate",
        table(
            ["fault rate", "jobs", "completed", "attempts/job",
             "retries", "breaker trips", "dead letters"],
            [[f"{r['rate']:.2f}", r["jobs"], f"{100 * r['completion']:.1f}%",
              f"{r['amplification']:.2f}", r["retries"],
              r["breaker_trips"], r["dead_letters"]]
             for r in rows],
        ),
    )

    clean = rows[0]
    assert clean["completion"] == 1.0
    assert clean["amplification"] == 1.0
    assert clean["breaker_trips"] == 0

    # completion degrades monotonically-ish but retries keep it high: at a
    # 20% compound fault rate and 3 retries, per-job loss is ~0.2^4
    by_rate = {r["rate"]: r for r in rows}
    assert by_rate[0.05]["completion"] > 0.999
    assert by_rate[0.2]["completion"] > 0.99
    assert by_rate[0.5]["completion"] > 0.9
    # retry amplification grows with the fault rate
    amps = [r["amplification"] for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(amps, amps[1:]))
    assert by_rate[0.5]["amplification"] > 1.5
    # and the sweep surfaces real resilience activity to regress against
    assert by_rate[0.5]["retries"] > 0
    assert by_rate[0.5]["dead_letters"] > 0
