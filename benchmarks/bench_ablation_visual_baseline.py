"""Ablation: the visual-similarity baseline vs the SquatPhi classifier.

§2/§4.2's argument against classic visual-similarity detection, measured:
register every brand's legitimate page, sweep the hash-distance threshold,
and compare the baseline's best operating point against the deployed
classifier on the same verified phishing pages.
"""

from repro.analysis.render import table
from repro.vision.similarity_detector import (
    VisualSimilarityDetector,
    sweep_thresholds,
)
from repro.web.browser import Browser
from repro.web.http import WEB_UA

from exhibits import print_exhibit


def test_ablation_visual_baseline(benchmark, bench_pipeline, bench_result, bench_world):
    browser = Browser(bench_world.host, WEB_UA)

    detector = VisualSimilarityDetector()
    verified_brands = {v.brand for v in bench_result.verified}
    for brand_name in sorted(verified_brands):
        brand = bench_world.catalog.get(brand_name)
        capture = browser.visit(f"http://{brand.domain}/")
        if capture is not None:
            detector.register_brand(brand_name, capture.screenshot.pixels)

    verified = {v.domain for v in bench_result.verified}
    positives = [d.capture.screenshot.pixels
                 for d in bench_result.flagged
                 if d.profile == "web" and d.domain in verified]
    negatives = [p.screenshot_pixels
                 for p in bench_result.ground_truth
                 if p.label == 0 and p.screenshot_pixels is not None][:150]

    points = benchmark.pedantic(
        sweep_thresholds, args=(detector, positives, negatives),
        rounds=1, iterations=1,
    )

    print_exhibit(
        "Ablation - visual-similarity baseline threshold sweep",
        table(
            ["threshold", "phish recall", "benign FP rate"],
            [[p.threshold, f"{100 * p.recall:.1f}%",
              f"{100 * p.false_positive_rate:.1f}%"] for p in points],
        ),
    )

    by_threshold = {p.threshold: p for p in points}
    # §4.2's conclusion: a deployable (low-FP) threshold is blind to the
    # layout-obfuscated phish SquatPhi verified...
    tight = by_threshold[10]
    assert tight.recall < 0.5
    # ...and loosening the threshold to recover them costs false positives
    loose = by_threshold[35]
    assert loose.recall > tight.recall + 0.2
    assert loose.false_positive_rate > tight.false_positive_rate
    # the classifier caught all of these pages by construction of the set
    classifier_recall = 1.0
    assert classifier_recall > max(p.recall for p in points
                                   if p.false_positive_rate <= 0.05)
