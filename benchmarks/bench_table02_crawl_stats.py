"""Table 2: crawl statistics — liveness and redirect destinations.

Paper (web): 362,545 live of 657,663 (~55%); of the live domains 87.3% do
not redirect, 1.7% redirect to the original brand, 3.0% to a domain
marketplace, 8.0% elsewhere.  Mobile numbers are nearly identical.
"""

from repro.analysis.tables import crawl_stats
from repro.analysis.render import table

from exhibits import print_exhibit


def test_table02_crawl_stats(benchmark, bench_result, bench_world):
    snapshot = bench_result.crawl_snapshots[0]
    rows = benchmark(crawl_stats, snapshot,
                     bench_result.squat_matches, bench_world.catalog)

    print_exhibit(
        "Table 2 - crawling statistics",
        table(
            ["profile", "live", "no redirect", "to original", "to market", "other"],
            [[r.profile, r.live_domains,
              f"{r.no_redirect} ({100 * r.no_redirect / r.live_domains:.1f}%)",
              f"{r.redirect_original} ({100 * r.redirect_original / r.live_domains:.1f}%)",
              f"{r.redirect_market} ({100 * r.redirect_market / r.live_domains:.1f}%)",
              f"{r.redirect_other} ({100 * r.redirect_other / r.live_domains:.1f}%)"]
             for r in rows],
        ),
    )

    total_squats = len(bench_result.squat_matches)
    for row in rows:
        live_rate = row.live_domains / total_squats
        assert 0.45 < live_rate < 0.68                       # paper ~55%
        assert row.no_redirect / row.live_domains > 0.78     # paper 87%
        original_rate = row.redirect_original / row.live_domains
        market_rate = row.redirect_market / row.live_domains
        assert 0.005 < original_rate < 0.06                  # paper 1.7%
        assert 0.01 < market_rate < 0.08                     # paper 3.0%
    # web and mobile see nearly the same picture
    assert abs(rows[0].live_domains - rows[1].live_domains) < 0.1 * rows[0].live_domains
