"""Fig 7: squatting-domain usage among PhishTank-reported URLs.

Paper: 6,156 of 6,755 (91%) use no squatting domain at all; the remainder
are almost entirely combo squats (592), with single-digit homograph/typo
and zero bits/wrongTLD.  This motivates searching the DNS directly instead
of relying on blacklists.
"""

from repro.analysis.figures import phishtank_squatting_histogram
from repro.analysis.render import bar_chart

from exhibits import print_exhibit


def test_fig07_phishtank_squatting(benchmark, bench_world):
    reports = bench_world.phishtank.generate()
    histogram = benchmark(phishtank_squatting_histogram, reports)

    print_exhibit("Fig 7 - squatting types among PhishTank URLs",
                  bar_chart(histogram, width=40))

    total = sum(histogram.values())
    assert 0.85 < histogram["No"] / total < 0.96     # paper: 91%
    squatting = total - histogram["No"]
    assert histogram["combo"] / squatting > 0.85     # combo dominates
    assert histogram["bits"] == 0                    # none in the paper
    assert histogram["wrongTLD"] == 0
