"""Small helpers shared by the exhibit benches."""

from __future__ import annotations


def print_exhibit(title: str, body: str) -> None:
    """Uniform exhibit output for bench logs."""
    line = "=" * max(len(title), 20)
    print(f"\n{line}\n{title}\n{line}\n{body}\n")
