"""Serving bench: the batched multi-worker query front vs scalar lookups.

PR 7 added :mod:`repro.serve` — an interactive verdict engine whose
workers mmap the packed snapshot zero-copy (the scan kernel's fork/COW
pool plumbing), micro-batch incoming queries under (max_batch,
max_delay) bounds, short-circuit repeat negatives through a TTL'd cache,
and hot-reload published snapshot generations between batches — all
bound by the determinism contract: every served verdict is a pure
function of (name, snapshot generation), so batching, workers, caching,
and reload timing are throughput/latency knobs only.

This bench synthesizes a 10^5-record snapshot (reusing the zone-scale
synthesizer) plus a repetitive Poisson query stream, and serves the SAME
stream through:

* ``unbatched-1w``      — every request its own batch, serial: the
  scalar baseline the speedup floor is measured against;
* ``batched-1w``        — micro-batching alone (vectorized classify);
* ``batched-4w``        — batching + 4 mmap workers: the headline leg;
* ``batched-16w``       — the wide-pool point of the scaling curve;
* ``batched-4w-nocache``— the headline leg with the negative cache off.

It asserts every leg's verdict stream is byte-identical (digest) to the
offline scan/classify oracle (``offline_verdicts``), then the headline
number: batched-4w QPS >= 3x unbatched-1w (min-of-attempts, gc-paused
timing, as in ``bench_enrichment.py``).  On hosts with fewer than 4
CPUs a process pool can only time-slice one core while paying IPC
overhead, so there the floor falls back to the batching win alone
(batched-1w >= 3x unbatched-1w) and the JSON records which leg was
gated.  A final hot-reload leg
republishes the snapshot as generation 2 mid-burst and checks zero
dropped responses with per-generation byte equality against the oracle.
A ``BENCH_serving.json`` summary is written for the perf trajectory; CI
runs the smoke scale and archives the JSON as an artifact.

Environment knobs (the ``__main__`` flags override them, for CI):
    SERVE_BENCH_SCALE  "default" (10^5 records, QPS floor asserted)
                       or "smoke" (20k records, equality checks only).
    SERVE_BENCH_OUT    summary path (default: BENCH_serving.json).
"""

import json
import os
import tempfile
import time

from repro.analysis.render import table
from repro.brands import build_paper_catalog
from repro.dns.packedzone import PackedZone
from repro.serve import (SnapshotPublisher, digest_verdicts,
                         offline_verdicts, plan_batches, serve_load,
                         synth_requests)
from repro.squatting.detector import SquattingDetector

from bench_snapshot_scale import build_packed_zone, synth_names
from exhibits import print_exhibit
from timing import gc_paused, merge_best

SCALE = os.environ.get("SERVE_BENCH_SCALE", "default")
OUT_PATH = os.environ.get("SERVE_BENCH_OUT", "BENCH_serving.json")

QPS = 50_000.0           # sim-clock arrival rate; dense enough that the
                         # batcher actually fills its max_batch windows
MAX_BATCH = 256          # bench batches run larger than the serving
                         # default (64): one IPC round trip per 256
                         # queries keeps the pool legs compute-bound
MAX_DELAY = 0.005
HEADLINE_WORKERS = 4


def _scale_params(scale):
    """(records, queries, qps_floor) per scale."""
    if scale == "smoke":
        return 20_000, 4_000, None
    return 100_000, 24_000, 3.0


# ----------------------------------------------------------------------
# serve legs
# ----------------------------------------------------------------------

def _run_leg(label, detector, zone, requests, workers, max_batch,
             max_delay, negcache=True, publisher=None, on_dispatch=None):
    verdicts, stats = serve_load(
        detector, zone, requests, workers=workers,
        max_batch=max_batch, max_delay=max_delay, negcache=negcache,
        publisher=publisher, on_dispatch=on_dispatch)
    return {
        "leg": label,
        "workers": workers,
        "max_batch": max_batch,
        "batches": stats.batches,
        "seconds": round(stats.wall_seconds, 4),
        "qps": round(stats.qps),
        "p50_ms": round(stats.p50_ms, 3),
        "p99_ms": round(stats.p99_ms, 3),
        "negcache_hits": stats.negcache_hits,
        "dropped": stats.dropped,
        "swaps": stats.generation_swaps,
        "served_by_generation": {str(g): n for g, n in
                                 sorted(stats.served_by_generation.items())},
        "digest": digest_verdicts(verdicts),
        "_verdicts": verdicts,
    }


# ----------------------------------------------------------------------
# bench driver
# ----------------------------------------------------------------------

def run_bench(scale=SCALE, out_path=OUT_PATH):
    # collector pauses land randomly across legs otherwise, and the
    # scalar baseline is short enough for one pause to flip the ratio
    with gc_paused():
        return _run_bench(scale, out_path)


def _run_bench(scale, out_path):
    n_records, n_queries, qps_floor = _scale_params(scale)
    catalog = build_paper_catalog()
    detector = SquattingDetector(catalog)

    print(f"synthesizing {n_records} records / {n_queries} queries "
          f"({scale} scale) ...")
    names = synth_names(n_records, catalog)
    workdir = tempfile.mkdtemp(prefix="bench_serving_")
    packed_path = os.path.join(workdir, "snapshot.pzon")
    build_packed_zone(names).save(packed_path)
    zone = PackedZone.load(packed_path)

    requests = synth_requests(n_queries, QPS,
                              registered=list(zone.registered_domains()))

    # THE oracle: the offline scan/classify pass every served verdict
    # stream must reproduce byte for byte
    started = time.perf_counter()
    oracle = offline_verdicts(detector, zone,
                              [name for _at, name in requests])
    oracle_seconds = time.perf_counter() - started
    reference = digest_verdicts(oracle)

    legs = [
        ("unbatched-1w", 1, 1, 0.0, True),
        ("batched-1w", 1, MAX_BATCH, MAX_DELAY, True),
        ("batched-4w", 4, MAX_BATCH, MAX_DELAY, True),
        ("batched-16w", 16, MAX_BATCH, MAX_DELAY, True),
        ("batched-4w-nocache", 4, MAX_BATCH, MAX_DELAY, False),
    ]
    rows = []
    for label, workers, max_batch, max_delay, negcache in legs:
        rows.append(_run_leg(label, detector, zone, requests, workers,
                             max_batch, max_delay, negcache=negcache))
    by_leg = {r["leg"]: r for r in rows}
    baseline = by_leg["unbatched-1w"]
    # the pool leg is the headline where it can actually parallelize;
    # on a 1-core box it only time-slices the CPU plus pays IPC, so the
    # floor is measured against the batching win instead
    cores = os.cpu_count() or 1
    floor_leg = ("batched-4w" if cores >= HEADLINE_WORKERS
                 else "batched-1w")
    headline = by_leg[floor_leg]
    headline_workers = headline["workers"]

    def _speedup():
        return (headline["qps"]) / max(baseline["qps"], 1e-9)

    # single-run wall clocks are noisy; min-of-attempts on the two
    # headline legs (see bench_enrichment.py) — re-timing keeps each
    # leg's best wall clock, i.e. its max QPS
    attempts = 1
    while qps_floor is not None and attempts < 3:
        attempts += 1
        again_base = _run_leg("unbatched-1w", detector, zone, requests,
                              1, 1, 0.0)
        again_head = _run_leg(floor_leg, detector, zone, requests,
                              headline_workers, MAX_BATCH, MAX_DELAY)
        for leg, again in ((baseline, again_base), (headline, again_head)):
            merge_best(leg, again,
                       keys=("seconds", "qps", "p50_ms", "p99_ms"))

    # hot-reload leg: publish the snapshot as generation 1, serve on it,
    # and republish as generation 2 halfway through the burst — workers
    # must drain in-flight batches on the old mmap, swap, and drop nothing
    publisher = SnapshotPublisher(os.path.join(workdir, "published"))
    _gen, gen1_path = publisher.publish(zone)
    gen1_zone = PackedZone.load(gen1_path)
    n_batches = len(plan_batches(requests, MAX_BATCH, MAX_DELAY))
    swap_at = max(1, n_batches // 2)

    def republish(index):
        if index == swap_at:
            publisher.publish(zone)

    reload_leg = _run_leg("hot-reload-4w", detector, gen1_zone, requests,
                          4, MAX_BATCH, MAX_DELAY,
                          publisher=publisher, on_dispatch=republish)
    rows.append(reload_leg)

    print_exhibit(
        "Serving bench - legs (identical verdicts)",
        table(
            ["leg", "batches", "seconds", "qps", "p50 ms", "p99 ms",
             "neg hits"],
            [[r["leg"], r["batches"], f"{r['seconds']:.3f}", r["qps"],
              f"{r['p50_ms']:.3f}", f"{r['p99_ms']:.3f}",
              r["negcache_hits"]] for r in rows],
        ),
    )

    speedup = _speedup()
    summary = {
        "bench": "serving",
        "scale": scale,
        "records": n_records,
        "queries": n_queries,
        "qps_sim": QPS,
        "oracle_seconds": round(oracle_seconds, 3),
        "timing_attempts": attempts,
        "cpu_count": cores,
        "floor_leg": floor_leg,
        "runs": [{k: v for k, v in r.items() if k != "_verdicts"}
                 for r in rows],
        "speedup_headline_vs_unbatched1": round(speedup, 3),
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    print(f"\nwrote {out_path} ({floor_leg} vs unbatched-1w: "
          f"{speedup:.2f}x QPS, {cores} cpus)")

    # determinism contract: every leg (any batching/worker/cache setting)
    # must reproduce the offline oracle's verdicts byte for byte
    for row in rows[:-1]:
        assert row["digest"] == reference, \
            f"{row['leg']} diverged from the offline scan/classify oracle"
        assert row["dropped"] == 0, f"{row['leg']} dropped responses"

    # hot-reload acceptance: nothing dropped, the swap actually happened,
    # both generations answered queries, and each generation's verdicts
    # match the offline oracle run against THAT generation's snapshot
    assert reload_leg["dropped"] == 0, "hot reload dropped responses"
    assert reload_leg["swaps"] == 1, "mid-burst republish was not adopted"
    assert set(reload_leg["served_by_generation"]) == {"1", "2"}, \
        f"expected both generations: {reload_leg['served_by_generation']}"
    gen2_zone = publisher.open_current()
    for generation, gen_zone in ((1, gen1_zone), (2, gen2_zone)):
        group = [v for v in reload_leg["_verdicts"]
                 if v.generation == generation]
        expected = offline_verdicts(detector, gen_zone,
                                    [v.domain for v in group],
                                    generation=generation)
        assert digest_verdicts(group) == digest_verdicts(expected), \
            f"generation {generation} verdicts diverged from the oracle"

    # headline acceptance (skipped at smoke scale: too short to time)
    if qps_floor is not None:
        assert speedup >= qps_floor, (
            f"expected >= {qps_floor}x QPS from {floor_leg} over the "
            f"scalar baseline, measured {speedup:.2f}x")
    return summary


def test_serving_bench():
    run_bench()


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="20k records, equality assertions only")
    parser.add_argument("--out", default=None, help="summary JSON path")
    cli = parser.parse_args()
    run_bench(scale="smoke" if cli.smoke else SCALE,
              out_path=cli.out or OUT_PATH)
