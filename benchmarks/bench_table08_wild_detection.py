"""Table 8: in-the-wild detection and manual confirmation.

Paper: of 657,663 squatting domains the classifier flags 1,224 web / 1,269
mobile / 1,741 union pages; manual examination confirms 857 (70.0%) / 908
(72.0%) / 1,175 (67.4%) across 247/255/281 brands.  Squatting phishing is
rare among squats (~0.2%).  Shape asserted: confirm rates in the 60-95%
band, a small phishing fraction, and more mobile than web phish.
"""

from repro.analysis.tables import wild_detection_rows
from repro.analysis.render import table

from exhibits import print_exhibit


def test_table08_wild_detection(benchmark, bench_result, bench_world):
    total_squats = len(bench_result.squat_matches)
    rows = benchmark(wild_detection_rows, bench_result, total_squats)

    print_exhibit(
        "Table 8 - detected and confirmed squatting phishing",
        table(
            ["population", "squat domains", "flagged", "confirmed",
             "confirm rate", "brands"],
            [[r.population, r.squatting_domains, r.classified_phishing,
              r.confirmed, f"{100 * r.confirm_rate:.1f}%", r.related_brands]
             for r in rows],
        ),
    )

    web, mobile, union = rows
    for row in rows:
        assert 0.45 < row.confirm_rate <= 1.0      # paper: ~67-72%
    assert union.confirmed >= max(web.confirmed, mobile.confirmed)
    # squatting phishing is a small fraction of squatting domains
    assert union.confirmed / total_squats < 0.12
    # the mobile side sees at least as much phishing as web (§6.1)
    assert mobile.confirmed >= web.confirmed - 3
    # recall against the world's planted phish
    planted = len(bench_world.phishing_sites)
    assert union.confirmed > 0.7 * planted
