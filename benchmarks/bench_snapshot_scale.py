"""Zone-scale bench: packed columnar snapshots vs the dict-backed store.

PR 5 added :mod:`repro.dns.packedzone` — a zone snapshot interned into
contiguous columnar arrays, serialized to a single mmap-able file — and a
vectorized scan kernel (:mod:`repro.squatting.packedscan`) whose pool
workers mmap the file and classify ``[start, stop)`` registered-domain
slices zero-copy, instead of receiving pickled string chunks.  Both are
bound by the determinism contract: representation and worker count are
throughput knobs that never change an output byte.

This bench synthesizes a million-record snapshot (ActiveDNS scale is two
orders above, but shape-faithful: ~1% squatting density, a few TLDs, a
tail of ``www.`` subdomains) and runs the same catalog scan through:

* ``dict-serial``   — ``ZoneStore`` + ``SquattingDetector.scan``: the
  reference path every other leg must match byte for byte;
* ``dict-sharded``  — the PR 1 process pool over pickled name chunks;
* ``packed-N``      — the mmap kernel at workers {1, 2, 4}.

It asserts identical ``digest_squat_matches`` across every leg, then the
headline numbers: packed at 4 workers >= 2x the dict-backed sharded scan
(min-of-attempts timing, as in ``bench_training.py``), and the packed
store resident in >= 4x less memory than ``ZoneStore`` at equal record
count (each store built/mapped in a fresh subprocess, VmRSS delta).

A second, survivor-heavy leg (DESIGN.md §16) synthesizes a mix built to
*defeat* the vector reject — hyphen-rich organics, combo-prefix and
homograph-bucket near-misses, true squats, a pinch of ``xn--`` rows —
and runs it through the in-kernel family matchers against the PR 5
legacy twin (``in_kernel=False``): identical digests (including a
forced-wider matrix, the streaming delta-scan shape, and the serve
engine's ``classify_batch`` against ``offline_verdicts``), a scalar
fallback rate under 1%, and at default scale >= 2x over the legacy
scalar tail.  A ``BENCH_zone_scale.json`` summary is written for the
perf trajectory; CI runs the smoke scale and archives the JSON as an
artifact.

Environment knobs (the ``__main__`` flags override them, for CI):
    ZONE_BENCH_SCALE  "default" (10^6 records, speedup + memory asserts)
                      or "smoke" (60k records, digest equality only).
    ZONE_BENCH_OUT    summary path (default: BENCH_zone_scale.json).
"""

import json
import os
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.analysis.render import table
from repro.brands import build_paper_catalog
from repro.dns.packedzone import PackedZone, PackedZoneBuilder
from repro.dns.zone import ZoneStore
from repro.serve.engine import QueryEngine, digest_verdicts, offline_verdicts
from repro.squatting import packedscan
from repro.squatting.detector import SquattingDetector
from repro.squatting.generator import SquattingGenerator
from repro.squatting.packedscan import PackedScanContext, packed_scan
from repro.stages import digest_squat_matches

from exhibits import print_exhibit

SCALE = os.environ.get("ZONE_BENCH_SCALE", "default")
OUT_PATH = os.environ.get("ZONE_BENCH_OUT", "BENCH_zone_scale.json")

WORKER_COUNTS = (1, 2, 4)
SQUAT_RATE = 0.01        # the paper finds ~657k squatting in 224M domains;
                         # 1% keeps the positive class visible at bench scale
SUBDOMAIN_RATE = 0.03    # www. tail: extra records, same registered domains
TLDS = ("com", "net", "org", "info")

_ALPHABET = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz0123456789",
                          dtype=np.uint8)


def _scale_params(scale):
    """(records, speedup_floor, memory_floor) per scale."""
    if scale == "smoke":
        return 60_000, None, None
    return 1_000_000, 2.0, 4.0


# ----------------------------------------------------------------------
# synthetic snapshot
# ----------------------------------------------------------------------

def _organic_labels(n, rng):
    """n random core labels, lengths 8..16, ~2% with an inner hyphen."""
    width = 16
    lens = rng.integers(8, width + 1, size=n)
    mat = _ALPHABET[rng.integers(0, len(_ALPHABET), size=(n, width))]
    mat[np.arange(width)[None, :] >= lens[:, None]] = 0
    hyphens = np.nonzero(rng.random(n) < 0.02)[0]
    mat[hyphens, 3] = ord("-")
    flat = mat.reshape(-1).view(f"S{width}")
    return [label.decode("ascii") for label in flat]


def _squat_pool(catalog, rng, cap=20_000):
    """Registered squatting domains sampled from the candidate generator."""
    generator = SquattingGenerator()
    pool = []
    for brand in catalog:
        candidates = generator.candidates(brand, include_combo=True)
        for labels in candidates.labels.values():
            pool.extend(f"{label}.{brand.tld or 'com'}" for label in labels)
        for domains in candidates.domains.values():
            pool.extend(domains)
        if len(pool) >= cap * 4:
            break
    pool = sorted(set(pool))
    index = rng.permutation(len(pool))[:cap]
    return [pool[i] for i in index]


def synth_names(n_records, catalog, seed=1803):
    """A deterministic n-record snapshot name stream (~1% squatting)."""
    rng = np.random.default_rng(seed)
    labels = _organic_labels(n_records, rng)
    tld_idx = rng.integers(0, len(TLDS), size=n_records)
    names = [f"{label}.{TLDS[t]}" for label, t in zip(labels, tld_idx)]
    squats = _squat_pool(catalog, rng)
    for pos in np.nonzero(rng.random(n_records) < SQUAT_RATE)[0]:
        names[pos] = squats[pos % len(squats)]
    for pos in np.nonzero(rng.random(n_records) < SUBDOMAIN_RATE)[0]:
        names[pos] = f"www.{names[pos]}"
    return names


def synth_survivor_names(n_records, catalog, seed=2203):
    """A survivor-heavy name stream: rows the vector reject must *keep*.

    The main stream is ~99% vector-rejected, so it times the reject, not
    the classify tail.  This mix is built to defeat the reject on
    purpose — hyphen-rich organics, combo-prefix near-misses, homograph-
    bucket near-misses (interior rotations keep length, edge characters,
    and the allowed-character set), true squats, and a 0.2% pinch of
    ``xn--`` rows that must fall back — so the kernel-vs-legacy delta
    measures the in-kernel family matchers themselves.
    """
    rng = np.random.default_rng(seed)
    brands = [brand.core_label for brand in catalog
              if 4 <= len(brand.core_label) <= 14][:400]
    organic = _organic_labels(n_records, rng)
    tld_idx = rng.integers(0, len(TLDS), size=n_records)
    roll = rng.random(n_records)
    bidx = rng.integers(0, len(brands), size=n_records)
    squats = _squat_pool(catalog, rng, cap=10_000)
    names = []
    for i in range(n_records):
        tld = TLDS[tld_idx[i]]
        brand = brands[bidx[i]]
        r = roll[i]
        if r < 0.25:
            lab = organic[i]
            names.append(f"{lab[:3]}-{lab[3:6]}-{lab[6:]}".strip("-")
                         + f".{tld}")
        elif r < 0.40:
            names.append(f"{brand[:4]}{organic[i][:6]}.{tld}")
        elif r < 0.50:
            mid = brand[1:-1]
            lab = brand[0] + mid[1:] + mid[0] + brand[-1]
            names.append(f"{lab}.{tld}")
        elif r < 0.62:
            names.append(squats[i % len(squats)])
        elif r < 0.622:
            names.append(f"xn--{organic[i][:8]}-8va.{tld}")
        else:
            names.append(f"{organic[i]}.{tld}")
    return names


def build_dict_zone(names):
    zone = ZoneStore()
    for name in names:
        zone.add_name(name)
    return zone


def build_packed_zone(names):
    builder = PackedZoneBuilder()
    for name in names:
        builder.add_name(name)
    return builder.build()


# ----------------------------------------------------------------------
# scan legs
# ----------------------------------------------------------------------

def _run_leg(label, detector, zone, workers):
    started = time.perf_counter()
    matches = detector.scan_sharded(zone, workers=workers)
    elapsed = time.perf_counter() - started
    registered = zone.stats()["registered_domains"]
    return {
        "leg": label,
        "workers": workers,
        "seconds": round(elapsed, 3),
        "registered": registered,
        "domains_per_second": round(registered / max(elapsed, 1e-9)),
        "matches": len(matches),
        "digest": digest_squat_matches(matches),
    }


def _run_kernel_leg(label, detector, zone, workers, in_kernel=True,
                    width=None):
    """One packed scan with explicit kernel mode + KernelStats surfaced."""
    started = time.perf_counter()
    matches = packed_scan(detector, zone, workers=workers, width=width,
                          in_kernel=in_kernel)
    elapsed = time.perf_counter() - started
    stats = packedscan.take_last_scan_stats()
    return {
        "leg": label,
        "workers": workers,
        "seconds": round(elapsed, 3),
        "registered": zone.n_registered,
        "domains_per_second": round(zone.n_registered / max(elapsed, 1e-9)),
        "matches": len(matches),
        "digest": digest_squat_matches(matches),
        "survivors": stats.survivors,
        "fallbacks": dict(sorted(stats.fallbacks.items())),
        "fallback_rate": round(stats.fallback_rate, 6),
    }


# ----------------------------------------------------------------------
# survivor-heavy legs: the in-kernel matchers vs the PR 5 scalar tail
# ----------------------------------------------------------------------

def _survivor_bench(detector, catalog, n_records, kernel_floor,
                    fallback_ceiling=0.01):
    """Kernel-vs-legacy scan over the survivor-heavy mix.

    Asserts every leg (legacy twin, kernel, kernel at a forced wider
    matrix — the streaming delta-scan shape, and the serve engine's
    ``classify_batch``) is byte-identical to the dict-backed serial
    reference, the kernel's scalar-fallback rate stays under
    ``fallback_ceiling``, and (when ``kernel_floor`` is set) the kernel
    beats the legacy twin by the floor, min-of-attempts timed.
    """
    names = synth_survivor_names(n_records, catalog)
    dict_zone = build_dict_zone(names)
    zone = build_packed_zone(names)
    reference = digest_squat_matches(detector.scan(dict_zone))
    workers = WORKER_COUNTS[-1]
    natural = PackedScanContext(detector, zone).width

    legacy = _run_kernel_leg("survivor-legacy", detector, zone, workers,
                             in_kernel=False)
    kernel = _run_kernel_leg("survivor-kernel", detector, zone, workers)
    forced = _run_kernel_leg("survivor-kernel-wide", detector, zone,
                             workers=1, width=natural + 8)
    legs = [legacy, kernel, forced]

    def _speedup():
        return legacy["seconds"] / max(kernel["seconds"], 1e-9)

    retries = 0
    while (kernel_floor is not None and _speedup() < kernel_floor
           and retries < 2):
        retries += 1
        again_legacy = _run_kernel_leg("survivor-legacy", detector, zone,
                                       workers, in_kernel=False)
        again_kernel = _run_kernel_leg("survivor-kernel", detector, zone,
                                       workers)
        legacy["seconds"] = min(legacy["seconds"], again_legacy["seconds"])
        kernel["seconds"] = min(kernel["seconds"], again_kernel["seconds"])

    # the serving path shares the matchers: engine verdicts over a query
    # sample must equal the per-name reference oracle
    sample = names[::max(len(names) // 2000, 1)][:2000]
    engine = QueryEngine(detector, zone)
    serve_ok = digest_verdicts(engine.lookup_batch(sample)) == \
        digest_verdicts(offline_verdicts(detector, zone, sample))

    print_exhibit(
        "Zone-scale bench - survivor-heavy legs (identical outputs)",
        table(
            ["leg", "workers", "seconds", "domains/s", "survivors",
             "fallback rate"],
            [[leg["leg"], leg["workers"], f"{leg['seconds']:.2f}",
              leg["domains_per_second"], leg["survivors"],
              f"{100 * leg['fallback_rate']:.3f}%"] for leg in legs],
        ),
    )

    speedup = _speedup()
    for leg in legs:
        assert leg["digest"] == reference, \
            f"{leg['leg']} diverged from the dict-serial reference scan"
    assert serve_ok, "serve classify_batch diverged from offline_verdicts"
    assert kernel["fallback_rate"] < fallback_ceiling, (
        f"kernel fallback rate {kernel['fallback_rate']:.4f} exceeds "
        f"{fallback_ceiling}")
    if kernel_floor is not None:
        assert speedup >= kernel_floor, (
            f"expected >= {kernel_floor}x kernel speedup over the legacy "
            f"scalar tail, measured {speedup:.2f}x")
    return {
        "records": n_records,
        "runs": legs,
        "timing_attempts": retries + 1,
        "kernel_speedup_vs_legacy": round(speedup, 3),
        "fallback_rate": kernel["fallback_rate"],
        "fallbacks": kernel["fallbacks"],
        "serve_digest_ok": serve_ok,
    }


# ----------------------------------------------------------------------
# resident-memory legs (fresh subprocess per store, VmRSS delta)
# ----------------------------------------------------------------------

_RSS_CHILD_DICT = """
import json, sys
def rss_kb():
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
from repro.dns.zone import ZoneStore
with open(sys.argv[1], encoding="ascii") as handle:
    names = handle.read().split()
base = rss_kb()
zone = ZoneStore()
for name in names:
    zone.add_name(name)
print(json.dumps({"rss_kb": rss_kb() - base, "records": len(zone)}))
"""

_RSS_CHILD_PACKED = """
import json, sys
import numpy as np
def rss_kb():
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
from repro.dns.packedzone import PackedZone
base = rss_kb()
zone = PackedZone.load(sys.argv[1])
# fault every mapped page in, so the mmap is fully charged to VmRSS
np.asarray(np.frombuffer(zone._buf, dtype=np.uint8)).sum()
print(json.dumps({"rss_kb": rss_kb() - base, "records": len(zone)}))
"""


def _measure_rss(child_source, arg):
    env = dict(os.environ)
    src_dir = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", child_source, arg],
                          capture_output=True, text=True, env=env, check=True)
    return json.loads(proc.stdout)


def measure_memory(names, packed_path, workdir):
    """VmRSS deltas for both stores at equal record count (None off-Linux)."""
    if not os.path.exists("/proc/self/status"):
        return None
    names_path = os.path.join(workdir, "names.txt")
    with open(names_path, "w", encoding="ascii") as handle:
        handle.write("\n".join(names))
    dict_rss = _measure_rss(_RSS_CHILD_DICT, names_path)
    packed_rss = _measure_rss(_RSS_CHILD_PACKED, packed_path)
    assert dict_rss["records"] == packed_rss["records"]
    return {
        "dict_rss_kb": dict_rss["rss_kb"],
        "packed_rss_kb": packed_rss["rss_kb"],
        "ratio": round(dict_rss["rss_kb"] / max(packed_rss["rss_kb"], 1), 2),
    }


# ----------------------------------------------------------------------
# bench driver
# ----------------------------------------------------------------------

def run_bench(scale=SCALE, out_path=OUT_PATH):
    n_records, speedup_floor, memory_floor = _scale_params(scale)
    catalog = build_paper_catalog()
    detector = SquattingDetector(catalog)

    print(f"synthesizing {n_records} records ({scale} scale) ...")
    names = synth_names(n_records, catalog)

    workdir = tempfile.mkdtemp(prefix="bench_zone_scale_")
    packed_path = os.path.join(workdir, "snapshot.pzon")

    packed = build_packed_zone(names)
    packed.save(packed_path)
    memory = None
    if memory_floor is not None:
        # measure before the parent builds its own big stores, so the
        # children aren't competing with a resident GB of ZoneStore
        memory = measure_memory(names, packed_path, workdir)

    dict_zone = build_dict_zone(names)
    packed = PackedZone.load(packed_path)

    rows = [_run_leg("dict-serial", detector, dict_zone, workers=1)]
    reference = rows[0]["digest"]
    rows.append(_run_leg("dict-sharded", detector, dict_zone,
                         workers=WORKER_COUNTS[-1]))
    for workers in WORKER_COUNTS:
        rows.append(_run_leg(f"packed-{workers}", detector, packed, workers))

    print_exhibit(
        "Zone-scale bench - scan legs (identical outputs)",
        table(
            ["leg", "workers", "seconds", "domains/s", "matches"],
            [[r["leg"], r["workers"], f"{r['seconds']:.2f}",
              r["domains_per_second"], r["matches"]] for r in rows],
        ),
    )

    by_leg = {r["leg"]: r for r in rows}
    dict_sharded = by_leg["dict-sharded"]
    packed_tuned = by_leg[f"packed-{WORKER_COUNTS[-1]}"]

    def _speedup():
        return dict_sharded["seconds"] / max(packed_tuned["seconds"], 1e-9)

    # single-run wall clocks are noisy; when the first pass lands under
    # the floor, re-run the two timed legs and keep each leg's best time —
    # the standard min-of-attempts estimator (see bench_training.py).
    retries = 0
    while (speedup_floor is not None and _speedup() < speedup_floor
           and retries < 2):
        retries += 1
        again_dict = _run_leg("dict-sharded", detector, dict_zone,
                              workers=WORKER_COUNTS[-1])
        again_packed = _run_leg(f"packed-{WORKER_COUNTS[-1]}", detector,
                                packed, workers=WORKER_COUNTS[-1])
        dict_sharded["seconds"] = min(dict_sharded["seconds"],
                                      again_dict["seconds"])
        packed_tuned["seconds"] = min(packed_tuned["seconds"],
                                      again_packed["seconds"])

    # survivor-heavy leg: rows that defeat the vector reject, so the
    # kernel-vs-legacy delta times the in-kernel family matchers
    survivor = _survivor_bench(
        detector, catalog,
        n_records // 5 if speedup_floor is not None else n_records // 3,
        kernel_floor=2.0 if speedup_floor is not None else None)

    speedup = _speedup()
    summary = {
        "bench": "zone_scale",
        "scale": scale,
        "records": n_records,
        "packed_bytes": packed.nbytes,
        "timing_attempts": retries + 1,
        "runs": rows,
        "speedup_packed4_vs_dict_sharded": round(speedup, 3),
        "survivor": survivor,
        "memory": memory,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    line = f"\nwrote {out_path} (packed-4 speedup: {speedup:.2f}x, " \
           f"kernel vs scalar tail: " \
           f"{survivor['kernel_speedup_vs_legacy']:.2f}x at " \
           f"{100 * survivor['fallback_rate']:.3f}% fallback"
    if memory:
        line += f", memory ratio: {memory['ratio']:.1f}x"
    print(line + ")")

    # determinism contract: representation and worker count are throughput
    # knobs — every leg must reproduce the dict-backed serial scan's bytes
    for row in rows:
        assert row["digest"] == reference, \
            f"{row['leg']} diverged from the dict-serial reference scan"

    # headline acceptance (skipped at smoke scale, where runs are too
    # short to time stably and the stores too small to weigh fairly)
    if speedup_floor is not None:
        assert speedup >= speedup_floor, \
            f"expected >= {speedup_floor}x scan speedup, measured {speedup:.2f}x"
    if memory_floor is not None and memory is not None:
        assert memory["ratio"] >= memory_floor, (
            f"expected >= {memory_floor}x lower RSS for the packed store, "
            f"measured {memory['ratio']:.2f}x")
    return summary


def test_zone_scale_bench():
    run_bench()


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="60k records, digest-equality assertions only")
    parser.add_argument("--out", default=None, help="summary JSON path")
    cli = parser.parse_args()
    run_bench(scale="smoke" if cli.smoke else SCALE,
              out_path=cli.out or OUT_PATH)
