"""Table 5: top PhishTank brands and label decay after crawling.

Paper: of the 4,004 URLs under the top 8 brands, only 1,731 (43.2%) still
served phishing when crawled; survival varies wildly per brand (facebook
69%, paypal 27%, santander 9%).
"""

from repro.analysis.tables import ground_truth_decay
from repro.analysis.render import table

from exhibits import print_exhibit


def test_table05_groundtruth_decay(benchmark, bench_world):
    rows = benchmark(ground_truth_decay, bench_world.phishtank, 8)

    print_exhibit(
        "Table 5 - top PhishTank brands and valid-phishing decay",
        table(
            ["brand", "reported URLs", "% of feed", "valid phishing", "survival"],
            [[r.brand, r.reported_urls, f"{r.percent_of_feed:.1f}%",
              r.valid_phishing,
              f"{100 * r.valid_phishing / r.reported_urls:.0f}%"] for r in rows],
        ),
    )

    assert rows[0].brand == "paypal"
    total = sum(r.reported_urls for r in rows)
    valid = sum(r.valid_phishing for r in rows)
    assert 0.30 < valid / total < 0.55      # paper: 43.2%

    by_brand = {r.brand: r for r in rows}
    if "facebook" in by_brand and "paypal" in by_brand:
        fb = by_brand["facebook"]
        pp = by_brand["paypal"]
        assert (fb.valid_phishing / fb.reported_urls) > (
            pp.valid_phishing / pp.reported_urls)
