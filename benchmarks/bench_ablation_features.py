"""Ablation: feature families (the paper's central design claim).

§5.1 argues OCR features defeat string obfuscation because the screenshot
must still look right to the victim.  We retrain the classifier with
feature families toggled, score every page *out of fold* (5-fold CV), and
measure recall separately on the heavily string-obfuscated positives —
pages whose deceptive copy lives only in images.  Without the OCR channel,
recall on those pages must drop.
"""

import numpy as np

from repro.analysis.evasion import string_obfuscated
from repro.features.embedding import EmbeddingConfig, FeatureEmbedder
from repro.ml import RandomForest, stratified_kfold
from repro.analysis.render import table

from exhibits import print_exhibit


def out_of_fold_predictions(x, labels, threshold=0.5):
    """Pooled 5-fold out-of-fold predictions with a fresh RF per fold."""
    predictions = np.zeros(len(labels), dtype=int)
    for train_idx, test_idx in stratified_kfold(labels, k=5, seed=29):
        model = RandomForest(n_trees=25, max_depth=14)
        model.fit(x[train_idx], labels[train_idx])
        scores = model.predict_proba(x[test_idx])
        predictions[test_idx] = (scores >= threshold).astype(int)
    return predictions


def recall_on(predictions, labels, mask):
    hits = sum(1 for i in range(len(labels))
               if mask[i] and labels[i] == 1 and predictions[i] == 1)
    total = sum(1 for i in range(len(labels)) if mask[i] and labels[i] == 1)
    return hits / total if total else 0.0


def test_ablation_feature_families(benchmark, bench_pipeline, bench_result):
    pages = bench_result.ground_truth
    labels = np.array([p.label for p in pages])
    obfuscated_mask = [
        p.label == 1 and string_obfuscated(p.html, p.brand) for p in pages
    ]
    plain_mask = [p.label == 1 and not m for p, m in zip(pages, obfuscated_mask)]
    brand_names = bench_pipeline.world.catalog.names()

    configs = {
        "all features": EmbeddingConfig(),
        "no OCR": EmbeddingConfig(use_ocr=False),
        "lexical only": EmbeddingConfig(use_ocr=False, use_forms=False,
                                        use_numeric=False),
        "OCR only": EmbeddingConfig(use_lexical=False, use_forms=False,
                                    use_numeric=False),
    }

    rows = []
    results = {}
    for name, config in configs.items():
        embedder = FeatureEmbedder(brand_names, config)
        x = embedder.fit_transform([p.features for p in pages])
        predictions = out_of_fold_predictions(x, labels)
        obf_recall = recall_on(predictions, labels, obfuscated_mask)
        plain_recall = recall_on(predictions, labels, plain_mask)
        results[name] = (obf_recall, plain_recall)
        rows.append([name, f"{100 * obf_recall:.1f}%",
                     f"{100 * plain_recall:.1f}%"])

    print_exhibit(
        "Ablation - out-of-fold recall on string-obfuscated vs plain phishing",
        table(["feature set", "obfuscated recall", "plain recall"], rows),
    )

    full_obf = results["all features"][0]
    no_ocr_obf = results["no OCR"][0]
    # the OCR-less model must lose ground on the obfuscated positives,
    # while the full model holds (the paper's central claim)
    assert full_obf > no_ocr_obf
    assert full_obf - no_ocr_obf > 0.03
    assert results["all features"][1] >= 0.85   # plain pages remain easy

    # interpretability: which features carry the deployed full model?
    full_embedder = FeatureEmbedder(brand_names, EmbeddingConfig())
    x_full = full_embedder.fit_transform([p.features for p in pages])
    full_model = RandomForest(n_trees=25, max_depth=14).fit(x_full, labels)
    top = full_model.top_features(names=full_embedder.feature_names(), n=12)
    print_exhibit(
        "Top features of the deployed Random Forest",
        table(["feature", "importance"],
              [[name, f"{imp:.4f}"] for name, imp in top]),
    )
    # at least one OCR-channel keyword must matter (the paper's design bet)
    assert any(name.startswith("ocr:") for name, _ in top)

    # time one out-of-fold evaluation round (the ablation's unit of work)
    small = x_full[:200]
    small_labels = labels[:200]
    benchmark.pedantic(out_of_fold_predictions, args=(small, small_labels),
                       rounds=1, iterations=1)
