"""Snapshot-diff kernel + lifecycle analytics bench.

Two questions, answered at snapshot scale:

1. **Kernel throughput** — how many records/sec does the vectorized
   :func:`~repro.dns.zonediff.diff_packed` kernel classify versus the
   dict-set serial oracle :func:`~repro.dns.zonediff.diff_serial`, on
   synthetic A→B pairs with realistic churn (removals, IP rewrites,
   additions)?  Every timed leg first asserts **digest equality** —
   the kernel must produce byte-identical diff tables, the speedup is
   only meaningful on identical output.  The default scale asserts a
   >=5x floor at the 10^6-record pair (min-of-attempts, gc-paused
   timing, as in bench_serving.py / bench_streaming.py).
2. **Series stability** — consecutive-pair diffs of a generated dated
   series fanned over the process pool must produce the same diff-chain
   digest at 1, 2 and 4 workers, equal to the serial chain.

Env knobs:

    LIFECYCLE_BENCH_SCALE  "default" (10^5 + 10^6 record pairs, floor
                           asserted at 10^6) or "smoke" (2x10^4, digest
                           equality only).
    LIFECYCLE_BENCH_OUT    summary path (default: BENCH_lifecycle.json).
"""

import json
import os
import time

import numpy as np

from repro.analysis.lifecycle import (
    diff_chain_digest,
    diff_series,
    diff_series_serial,
)
from repro.analysis.render import table
from repro.brands import build_paper_catalog
from repro.dns.packedzone import PackedZoneBuilder
from repro.dns.zonediff import diff_packed, diff_serial
from repro.phishworld.series import SeriesConfig, generate_series

from bench_snapshot_scale import synth_names
from exhibits import print_exhibit
from timing import best_of, gc_paused

SCALE = os.environ.get("LIFECYCLE_BENCH_SCALE", "default")
OUT_PATH = os.environ.get("LIFECYCLE_BENCH_OUT", "BENCH_lifecycle.json")

ATTEMPTS = 3             # min-of-attempts for the kernel legs
REMOVE_RATE = 0.02       # share of A's records missing from B
CHANGE_RATE = 0.03       # share of A's records with a rewritten IP in B
ADD_RATE = 0.02          # share of fresh records appended to B
SPEEDUP_FLOOR = 5.0      # packed vs oracle at the largest default leg

WORKER_COUNTS = (1, 2, 4)


def _scale_params(scale):
    if scale == "smoke":
        # digest equality only: the floor needs the big pair to be
        # meaningful and CI smoke boxes are too noisy for ratios
        return [20_000], None
    if scale == "default":
        return [100_000, 1_000_000], SPEEDUP_FLOOR
    raise SystemExit(f"unknown LIFECYCLE_BENCH_SCALE {scale!r}")


# ----------------------------------------------------------------------
# synthetic churn pairs
# ----------------------------------------------------------------------

def synth_pair(n_records, catalog, seed=1803):
    """One deterministic A→B snapshot pair with mixed churn."""
    rng = np.random.default_rng(seed)
    names = synth_names(n_records, catalog, seed=seed)
    ips = [f"10.{i >> 16 & 255}.{i >> 8 & 255}.{i & 255}"
           for i in rng.integers(0, 2 ** 24, size=n_records)]

    builder_a = PackedZoneBuilder()
    for name, ip in zip(names, ips):
        builder_a.add_name(name, ip=ip)

    rolls = rng.random(n_records)
    removed = rolls < REMOVE_RATE
    changed = (~removed) & (rolls < REMOVE_RATE + CHANGE_RATE)
    builder_b = PackedZoneBuilder()
    for pos, (name, ip) in enumerate(zip(names, ips)):
        if removed[pos]:
            continue
        if changed[pos]:
            ip = f"192.0.2.{pos % 256}"
        builder_b.add_name(name, ip=ip)
    n_added = int(n_records * ADD_RATE)
    for serial in range(n_added):
        builder_b.add_name(f"fresh-{seed}-{serial}.example", ip="10.9.9.9")
    return builder_a.build(), builder_b.build()


# ----------------------------------------------------------------------
# kernel legs
# ----------------------------------------------------------------------

def _run_pair_leg(n_records, catalog, attempts=ATTEMPTS):
    zone_a, zone_b = synth_pair(n_records, catalog)

    # contract first: byte-identical diff tables, then the stopwatch
    packed = diff_packed(zone_a, zone_b)
    oracle = diff_serial(zone_a, zone_b)
    if packed.digest != oracle.digest:
        raise SystemExit(
            f"kernel/oracle digest mismatch at {n_records} records: "
            f"{packed.digest[:12]}… != {oracle.digest[:12]}…")

    packed_seconds, _ = best_of(
        lambda: diff_packed(zone_a, zone_b), attempts=attempts)
    # the oracle rebuilds per-record dicts; one timed pass is plenty
    oracle_seconds, _ = best_of(
        lambda: diff_serial(zone_a, zone_b), attempts=1)

    counts = packed.counts()
    records = zone_a.n_records + zone_b.n_records
    return {
        "records_a": zone_a.n_records,
        "records_b": zone_b.n_records,
        "domains": packed.n_domains,
        "added": counts["added"],
        "removed": counts["removed"],
        "changed": counts["changed"],
        "retained": counts["retained"],
        "packed_seconds": round(packed_seconds, 5),
        "oracle_seconds": round(oracle_seconds, 5),
        "packed_records_per_sec": round(records / max(packed_seconds, 1e-9)),
        "oracle_records_per_sec": round(records / max(oracle_seconds, 1e-9)),
        "speedup": round(oracle_seconds / max(packed_seconds, 1e-9), 2),
        "digest": packed.digest,
    }


# ----------------------------------------------------------------------
# series leg: worker-count invariance of the diff chain
# ----------------------------------------------------------------------

def _run_series_leg():
    config = SeriesConfig(n_snapshots=6, base_events=500,
                          events_per_snapshot=200)
    series = generate_series(config)
    serial_chain = diff_chain_digest(diff_series_serial(series))
    chains = {}
    for workers in WORKER_COUNTS:
        started = time.perf_counter()
        diffs = diff_series(series, workers=workers)
        seconds = time.perf_counter() - started
        chains[workers] = {
            "chain_digest": diff_chain_digest(diffs),
            "seconds": round(seconds, 3),
        }
    digests = {row["chain_digest"] for row in chains.values()}
    digests.add(serial_chain)
    if len(digests) != 1:
        raise SystemExit(
            f"diff chain digest varies with worker count: {digests}")
    return {
        "snapshots": config.n_snapshots,
        "pairs": config.n_snapshots - 1,
        "chain_digest": serial_chain,
        "workers": {str(w): row for w, row in chains.items()},
    }


# ----------------------------------------------------------------------
# bench driver
# ----------------------------------------------------------------------

def run_bench(scale=SCALE, out_path=OUT_PATH):
    with gc_paused():
        return _run_bench(scale, out_path)


def _run_bench(scale, out_path):
    pair_sizes, speedup_floor = _scale_params(scale)
    catalog = build_paper_catalog()

    rows = []
    for n_records in pair_sizes:
        print(f"diffing a {n_records}-record pair ({scale} scale) ...")
        rows.append(_run_pair_leg(n_records, catalog))

    print_exhibit(
        "Lifecycle bench - diff kernel vs dict-set oracle "
        "(identical digests)",
        table(
            ["records", "domains", "+", "-", "~", "packed s", "oracle s",
             "rec/s packed", "speedup"],
            [[r["records_a"], r["domains"], r["added"], r["removed"],
              r["changed"], f"{r['packed_seconds']:.4f}",
              f"{r['oracle_seconds']:.4f}",
              r["packed_records_per_sec"], f"{r['speedup']:.2f}x"]
             for r in rows],
        ),
    )

    print("diffing a dated series at workers", WORKER_COUNTS, "...")
    series_leg = _run_series_leg()

    headline = rows[-1]
    summary = {
        "bench": "lifecycle",
        "scale": scale,
        "timing_attempts": ATTEMPTS,
        "pair_legs": rows,
        "series_leg": series_leg,
        "speedup_packed_vs_oracle": headline["speedup"],
    }
    if speedup_floor is not None:
        assert headline["speedup"] >= speedup_floor, (
            f"diff kernel speedup {headline['speedup']:.2f}x below the "
            f"{speedup_floor:.0f}x floor at {headline['records_a']} records")
        summary["speedup_floor"] = speedup_floor
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {out_path} "
          f"({headline['speedup']:.2f}x over the oracle at "
          f"{headline['records_a']} records, chain digest stable at "
          f"workers {WORKER_COUNTS})")
    return summary


def test_lifecycle_bench():
    """pytest hook: smoke scale, digest equality + chain stability."""
    summary = run_bench(scale="smoke",
                        out_path=os.path.join(
                            os.environ.get("TMPDIR", "/tmp"),
                            "BENCH_lifecycle_smoke.json"))
    assert summary["pair_legs"], "no pair legs ran"
    workers = summary["series_leg"]["workers"]
    assert len({row["chain_digest"] for row in workers.values()}) == 1


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the small digest-equality-only scale")
    parser.add_argument("--out", default=OUT_PATH)
    cli_args = parser.parse_args()
    run_bench(scale="smoke" if cli_args.smoke else SCALE,
              out_path=cli_args.out)
