"""Fig 12: verified squatting-phishing domains per squatting type.

Paper: phishing pages exist under every squatting method; combo squats are
the most common carrier (cheapest to register), with 200+ pages spread
across homograph/bits/typo and the fewest on wrongTLD.
"""

from repro.analysis.figures import phish_squat_type_histogram
from repro.analysis.render import bar_chart

from exhibits import print_exhibit


def test_fig12_phish_squat_types(benchmark, bench_result):
    histogram = benchmark(phish_squat_type_histogram, bench_result.verified)

    web = phish_squat_type_histogram(bench_result.verified, profile="web")
    mobile = phish_squat_type_histogram(bench_result.verified, profile="mobile")
    print_exhibit(
        "Fig 12 - verified squatting phishing by squat type",
        bar_chart(histogram, title="union", width=40)
        + "\n\n" + bar_chart(web, title="web", width=40)
        + "\n\n" + bar_chart(mobile, title="mobile", width=40),
    )

    assert all(count > 0 for count in histogram.values())  # every method used
    assert histogram["combo"] == max(histogram.values())   # combo leads
    assert histogram["wrongTLD"] <= min(
        histogram["homograph"], histogram["bits"], histogram["typo"],
        histogram["combo"])
