"""Table 7: classifier performance on ground truth (10-fold CV).

Paper: NaiveBayes FP .50 / FN .05 / AUC .64; KNN .04/.10/.92; RandomForest
.03/.06/.97 with ACC .90 — Random Forest wins and gets deployed.
Shape asserted here: RF best AUC, FP/FN in the low-percent band.
"""

from repro.analysis.render import table

from exhibits import print_exhibit


def test_table07_classifier_performance(benchmark, bench_pipeline, bench_result):
    reports = bench_result.cv_reports

    print_exhibit(
        "Table 7 - classifier cross-validation",
        table(
            ["algorithm", "FP", "FN", "AUC", "ACC"],
            [[name, f"{r.false_positive_rate:.3f}", f"{r.false_negative_rate:.3f}",
              f"{r.auc:.3f}", f"{r.accuracy:.3f}"]
             for name, r in reports.items()],
        ),
    )

    rf = reports["random_forest"]
    nb = reports["naive_bayes"]
    knn = reports["knn"]
    assert rf.auc >= max(nb.auc, knn.auc) - 0.01   # RF is (near-)best
    assert rf.auc > 0.93                           # paper: 0.97
    assert rf.false_positive_rate < 0.08           # paper: 0.03
    assert rf.false_negative_rate < 0.12           # paper: 0.06
    assert rf.accuracy > 0.88                      # paper: 0.90
    assert nb.false_positive_rate >= rf.false_positive_rate  # NB worst FP

    # time the deployed model's per-page scoring (the production-relevant cost)
    sample = bench_result.ground_truth[0]
    vector = bench_pipeline.embedder.transform([sample.features])
    benchmark(bench_pipeline.model.predict_proba, vector)
