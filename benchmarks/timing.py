"""Shared wall-clock timing discipline for the speedup benches.

Every bench that asserts a speedup floor uses the same recipe, extracted
here from its three copies (serving, streaming, enrichment):

* **gc-paused timing** (:func:`gc_paused`) — collector pauses land
  randomly across legs, and the baselines are short enough for a single
  pause to flip a ratio, so the whole timed region runs with the
  collector off (one collect up front so the pause isn't merely moved
  inside the region);
* **min-of-attempts** (:func:`best_of`, :func:`merge_best`) — a single
  wall clock is noise; re-timing a leg and keeping its best run is the
  leg's honest throughput.  Digests must agree across attempts — timing
  never changes bytes.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Sequence, Tuple


@contextmanager
def gc_paused():
    """Run the body with the collector off (one collect up front)."""
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def best_of(fn: Callable[[], Any], attempts: int = 3) -> Tuple[float, Any]:
    """Best wall clock over ``attempts`` calls; returns (seconds, result).

    The last call's result is returned — callers assert digest equality
    across attempts separately when the result feeds a contract check.
    """
    if attempts < 1:
        raise ValueError("attempts must be positive")
    best = float("inf")
    result = None
    for _ in range(attempts):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def merge_best(leg: Dict[str, Any], again: Dict[str, Any],
               keys: Sequence[str] = ("seconds",),
               better_when: str = "seconds") -> None:
    """Fold a re-timed leg row into ``leg`` if it beat the kept run.

    ``better_when`` names the wall-clock field (smaller wins); ``keys``
    are the fields copied over when the rerun is better (the derived
    rates move together with the clock that produced them).
    """
    if again[better_when] < leg[better_when]:
        for key in keys:
            leg[key] = again[key]
