"""Table 4: brands whose squats most often redirect to domain marketplaces.

Paper: Zocdoc, Comerica, Verizon, Amazon, Paypal lead — squats of valuable
brands get parked for resale (2,168 Amazon squats pointed at markets).
"""

from repro.analysis.tables import brand_redirect_rows
from repro.analysis.render import table

from exhibits import print_exhibit

PAPER_MARKET = {"zocdoc", "comerica", "verizon", "amazon", "paypal"}


def test_table04_marketplace_redirects(benchmark, bench_result, bench_world):
    snapshot = bench_result.crawl_snapshots[0]
    rows = benchmark(
        brand_redirect_rows, snapshot, bench_result.squat_matches,
        bench_world.catalog, "market", 5, 3,
    )

    print_exhibit(
        "Table 4 - brands redirecting squats to marketplaces",
        table(
            ["brand", "redirecting", "share of live", "original", "market", "other"],
            [[r.brand, r.redirecting, f"{100 * r.redirect_share:.0f}%",
              r.original,
              f"{r.market} ({100 * r.market / r.redirecting:.0f}%)",
              r.other] for r in rows],
        ),
    )

    assert rows
    head = {r.brand for r in rows}
    assert head & PAPER_MARKET
    top = rows[0]
    assert top.market / top.redirecting > 0.4     # paper: 38-78% to market
