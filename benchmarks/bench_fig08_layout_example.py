"""Fig 8: image-hash distance examples for layout-obfuscated paypal pages.

Paper: four paypal pages at hash distances 0 (original), 7 (still visually
similar), 24 and 38 (obfuscated but still legitimate-looking).  The bench
builds increasingly-obfuscated variants and shows the distance gradient.
"""

import numpy as np

from repro.analysis.evasion import layout_distance
from repro.brands import Brand
from repro.phishworld.attacker import (
    EvasionProfile,
    PhishingPageBuilder,
    PhishingPageSpec,
)
from repro.phishworld.sites import brand_original_page
from repro.web.html import parse_html
from repro.web.screenshot import render_page

from exhibits import print_exhibit

BRAND = Brand(name="paypal", domain="paypal.com", sensitivity="payment")


def variant_distances():
    original = render_page(parse_html(brand_original_page(BRAND).to_html()))
    builder = PhishingPageBuilder(np.random.default_rng(8))
    distances = []
    specs = [
        ("faithful clone", EvasionProfile(), 0),
        ("light obfuscation", EvasionProfile(layout=True), 1),
        ("medium obfuscation", EvasionProfile(layout=True), 5),
        ("heavy obfuscation", EvasionProfile(layout=True, string=True), 9),
    ]
    for name, evasion, variant in specs:
        page = builder.build(PhishingPageSpec(
            brand=BRAND, theme="login", evasion=evasion, layout_variant=variant))
        pixels = render_page(parse_html(page.to_html())).pixels
        distances.append((name, layout_distance(pixels, original.pixels)))
    return distances


def test_fig08_layout_example(benchmark):
    distances = benchmark.pedantic(variant_distances, rounds=1, iterations=1)

    print_exhibit(
        "Fig 8 - paypal layout-obfuscation hash distances",
        "\n".join(f"{name:<20} distance {d}" for name, d in distances),
    )

    values = [d for _, d in distances]
    # the obfuscated variants must sit in the paper's 20-40 band, well above
    # the faithful clone
    assert values[0] < 20
    assert max(values[1:]) >= 20
    assert max(values) <= 50
