"""Fig 14: screenshot case studies of squatting phishing pages.

Paper shows six screenshots: goofle.com.ua (fake search engine),
go-uberfreight.com (offline scam), live-microsoftsupport.com (tech support
scam), mobile-adp.com (payroll scam, JS-injected form), driveforuber-style
pages, and securemail-citizenslc.com (bank credential theft).  The bench
renders the seeded versions, OCRs them, and verifies each scam's signature
is visible on screen.
"""

from repro.ocr.engine import OCREngine
from repro.web.browser import Browser
from repro.web.http import MOBILE_UA, WEB_UA
from repro.web.screenshot import to_ascii_art

from exhibits import print_exhibit

CASES = [
    ("goofle.com.ua", "web", ("search",)),
    ("go-uberfreight.com", "web", ("uber", "sign")),
    ("live-microsoftsupport.com", "web", ("support", "technician")),
    ("mobile-adp.com", "mobile", ("payroll", "payslip")),
    ("securemail-citizenslc.com", "web", ("verify", "card", "payment")),
]


def capture_all(host):
    captures = {}
    for domain, profile, _ in CASES:
        ua = MOBILE_UA if profile == "mobile" else WEB_UA
        captures[domain] = Browser(host, ua).visit(f"http://{domain}/")
    return captures


def test_fig14_case_studies(benchmark, bench_world):
    captures = benchmark.pedantic(capture_all, args=(bench_world.host,),
                                  rounds=1, iterations=1)
    engine = OCREngine(error_rate=0.0, drop_rate=0.0)

    sections = []
    for domain, profile, signatures in CASES:
        capture = captures[domain]
        assert capture is not None, f"{domain} should be live"
        text = engine.recognize(capture.screenshot.pixels).text.lower()
        hits = [s for s in signatures if s in text]
        assert hits, (domain, signatures, text[:200])
        sections.append(f"--- {domain} ({profile}) ---\n"
                        + to_ascii_art(capture.screenshot, max_width=72)[:800])
    print_exhibit("Fig 14 - case-study screenshots (ASCII)",
                  "\n\n".join(sections))
