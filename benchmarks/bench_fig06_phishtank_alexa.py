"""Fig 6: Alexa rank buckets of PhishTank-reported URL domains.

Paper: 4,749 of 6,755 (70%) rank beyond the Alexa top 1M — phishing lives
on unpopular domains, heaviest on free hosting like 000webhostapp.
"""

from repro.analysis.figures import alexa_rank_histogram
from repro.analysis.render import bar_chart

from exhibits import print_exhibit


def test_fig06_phishtank_alexa(benchmark, bench_world):
    domains = [r.domain for r in bench_world.phishtank.generate()]
    histogram = benchmark(alexa_rank_histogram, bench_world.alexa, domains)

    print_exhibit("Fig 6 - Alexa rank of PhishTank URL domains",
                  bar_chart(histogram, width=40))

    total = sum(histogram.values())
    beyond_1m = histogram["(1000000+"]
    assert 0.60 < beyond_1m / total < 0.80      # paper: 70%
    # the (1k-10k] bucket is the biggest ranked bucket in the paper
    ranked = {k: v for k, v in histogram.items() if k != "(1000000+"}
    assert max(ranked, key=ranked.get) == "(1000-10000]"
