"""Baseline comparison: SquatPhi's detector vs DNSTwist / URLCrazy (§3.1).

The paper's motivating claim: existing tools cannot enumerate combo squats,
never change the TLD, and ship incomplete confusable tables, so they miss
most of the squats that actually exist.  We score both baselines and the
SquatPhi detector against the world's squat ground truth.
"""

from repro.analysis.render import table
from repro.squatting.baselines import (
    DNSTwistBaseline,
    URLCrazyBaseline,
    baseline_coverage,
    coverage_by_type,
)
from repro.squatting.detector import SquattingDetector

from exhibits import print_exhibit


def test_baseline_comparison(benchmark, bench_world):
    brand_domains = {b.name: b.domain for b in bench_world.catalog}
    observed = bench_world.squat_truth

    dnstwist = DNSTwistBaseline()
    urlcrazy = URLCrazyBaseline()

    dnstwist_report = benchmark.pedantic(
        baseline_coverage, args=(dnstwist, brand_domains, observed),
        rounds=1, iterations=1,
    )
    urlcrazy_report = baseline_coverage(urlcrazy, brand_domains, observed)

    detector = SquattingDetector(bench_world.catalog)
    detected = {m.domain for m in detector.scan(bench_world.zone)}
    squatphi_matched = sum(1 for squat in observed if squat in detected)

    rows = [
        [dnstwist_report.name, dnstwist_report.generated,
         dnstwist_report.matched, f"{100 * dnstwist_report.recall:.1f}%"],
        [urlcrazy_report.name, urlcrazy_report.generated,
         urlcrazy_report.matched, f"{100 * urlcrazy_report.recall:.1f}%"],
        ["squatphi", "-", squatphi_matched,
         f"{100 * squatphi_matched / len(observed):.1f}%"],
    ]
    print_exhibit(
        "Baseline comparison - observed-squat recall",
        table(["tool", "candidates", "matched", "recall"], rows),
    )

    by_type = coverage_by_type(dnstwist, brand_domains, observed)
    print_exhibit(
        "DNSTwist recall by squat type",
        table(["type", "matched", "observed"],
              [[squat_type, matched, total]
               for squat_type, (matched, total) in sorted(by_type.items())]),
    )

    # the paper's motivation, as numbers:
    squatphi_recall = squatphi_matched / len(observed)
    assert squatphi_recall > 0.95
    assert dnstwist_report.recall < 0.5 * squatphi_recall
    assert urlcrazy_report.recall <= dnstwist_report.recall + 0.05
    # the structural misses: no combo, no wrongTLD coverage at all
    assert by_type["combo"][0] == 0
    assert by_type["wrongTLD"][0] == 0
