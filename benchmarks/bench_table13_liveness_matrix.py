"""Table 13: per-domain liveness of facebook phishing over the four crawls.

Paper: facecook.mobi / facebook-c.com / face-book.online /
facebook-sigin.com stay live all month; faceboolk.ml dies after the second
snapshot; tacebook.ga is replaced with a benign page in the third snapshot
and the phishing page comes back in the fourth.

The paper re-crawls exactly the detected domains weekly; we do the same
here, crawling the case-study domains over four snapshots.
"""

from repro.analysis.tables import liveness_matrix
from repro.analysis.render import table
from repro.web.crawler import DistributedCrawler

from exhibits import print_exhibit

PAPER_DOMAINS = [
    "facecook.mobi",
    "facebook-c.com",
    "face-book.online",
    "facebook-sigin.com",
    "faceboolk.ml",
    "tacebook.ga",
]


def test_table13_liveness_matrix(benchmark, bench_world):
    crawler = DistributedCrawler(bench_world.host, workers=4)
    snapshots = benchmark.pedantic(
        crawler.crawl_series, args=(PAPER_DOMAINS, 4), rounds=1, iterations=1,
    )
    rows = liveness_matrix(snapshots, PAPER_DOMAINS)

    print_exhibit(
        "Table 13 - liveness of facebook phishing domains per snapshot",
        table(["domain", "week 0", "week 1", "week 2", "week 3"],
              [[domain] + cells for domain, cells in rows]),
    )

    cells = dict(rows)
    # persistent domains live through all four snapshots
    for domain in PAPER_DOMAINS[:4]:
        assert cells[domain] == ["Live", "Live", "Live", "Live"], domain
    # faceboolk.ml dies after two snapshots (lifetime 2, no benign swap)
    assert cells["faceboolk.ml"][:2] == ["Live", "Live"]
    # tacebook.ga survives the takedown window: either its page is replaced
    # by a benign page that stays reachable, or it returns in week 3
    assert cells["tacebook.ga"][0] == "Live"
    assert cells["tacebook.ga"][3] == "Live"
