"""Fig 16: registration years of squatting-phishing domain names.

Paper: most phishing domains were registered within the four years before
the 2018 crawl, peaking in 2017; registrar data exists for ~63%, led by
GoDaddy (157 domains).

The series now comes from the bulk-enrichment table (one ``np.bincount``
over the year/registrar columns) instead of a per-domain registry walk;
the bench asserts both paths produce the identical histograms.
"""

from repro.analysis.figures import (
    registration_year_histogram,
    registration_year_histogram_from_table,
    registrar_histogram_from_table,
)
from repro.analysis.render import bar_chart

from exhibits import print_exhibit


def test_fig16_registration_time(benchmark, bench_result, bench_world):
    table = bench_result.enrichment
    assert table is not None
    domains = bench_result.verified_domains()

    histogram = benchmark(registration_year_histogram_from_table,
                          table, domains)
    assert histogram == registration_year_histogram(bench_world.whois, domains)

    print_exhibit(
        "Fig 16 - registration year of squatting phishing domains",
        bar_chart({str(year): count for year, count in histogram.items()},
                  width=40),
    )

    total = sum(histogram.values())
    recent = sum(count for year, count in histogram.items() if year >= 2015)
    assert recent / total > 0.70          # mass in the recent 4 years

    registrars = registrar_histogram_from_table(table, domains)
    assert registrars == bench_world.whois.registrar_histogram(domains)
    # GoDaddy is among the leading registrars (sample noise at this scale
    # can swap the #1/#2 spots; the paper's GoDaddy lead is ~1.3x)
    assert "godaddy.com" in list(registrars)[:2]
    covered = sum(registrars.values())
    assert 0.40 < covered / total < 0.85              # ~63% have registrar data
