"""Fig 17: live phishing pages at each weekly snapshot.

Paper: ~80% of detected squatting phishing pages remain alive after at
least a month; only a small portion goes down within 1-2 weeks.
"""

from repro.analysis.figures import liveness_series
from repro.analysis.render import table

from exhibits import print_exhibit


def test_fig17_longevity(benchmark, bench_result):
    domains = bench_result.verified_domains()
    series = benchmark(liveness_series, bench_result.crawl_snapshots, domains)

    print_exhibit(
        "Fig 17 - live phishing pages per weekly snapshot",
        table(
            ["snapshot", "web live", "mobile live"],
            [[f"week {i}", series["web"][i], series["mobile"][i]]
             for i in range(len(series["web"]))],
        ),
    )

    web = series["web"]
    mobile = series["mobile"]
    assert len(web) == 4
    # ~80% alive after a month; monotone-ish decay
    assert web[-1] >= 0.65 * web[0]
    assert mobile[-1] >= 0.65 * mobile[0]
    assert web[1] <= web[0] + 1
