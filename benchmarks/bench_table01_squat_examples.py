"""Table 1: example squatting domains per type for the facebook brand.

Paper: faceb00k.pw (homograph), xn--fcebook-8va.com (IDN homograph),
facebnok.tk (bits), facebo0ok.com / fcaebook.org (typo), facebook-story.de
(combo), facebook.audi (wrongTLD).  The bench times candidate generation for
one brand and verifies the detector classifies each paper example exactly.
"""

import pytest

from repro.brands import Brand
from repro.squatting.detector import SquattingDetector
from repro.squatting.generator import SquattingGenerator
from repro.squatting.types import SquatType

from exhibits import print_exhibit

PAPER_ROWS = [
    ("faceb00k.pw", SquatType.HOMOGRAPH),
    ("xn--fcebook-8va.com", SquatType.HOMOGRAPH),
    ("facebnok.tk", SquatType.BITS),
    ("facebo0ok.com", SquatType.TYPO),
    ("fcaebook.org", SquatType.TYPO),
    ("facebook-story.de", SquatType.COMBO),
    ("facebook.audi", SquatType.WRONG_TLD),
]


def test_table01_squat_examples(benchmark, bench_world):
    brand = bench_world.catalog.get("facebook")
    generator = SquattingGenerator()

    candidates = benchmark(generator.candidates, brand)
    assert candidates.total() > 500

    detector = SquattingDetector(bench_world.catalog)
    lines = []
    for domain, expected_type in PAPER_ROWS:
        match = detector.classify_domain(domain)
        assert match is not None, domain
        assert match.brand == "facebook"
        assert match.squat_type == expected_type, (domain, match.squat_type)
        lines.append(f"{domain:<26} {match.squat_type.value}")
    print_exhibit("Table 1 - squatting examples for facebook",
                  "\n".join(lines))
