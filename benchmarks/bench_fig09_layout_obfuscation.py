"""Fig 9: mean image-hash distance per brand for ground-truth phishing.

Paper: most brands average distance ≈ 20 or higher with large variance —
layout obfuscation is pervasive and no universal similarity threshold works
across brands.
"""

from repro.analysis.evasion import per_brand_layout_distances
from repro.analysis.render import table

from exhibits import print_exhibit


def test_fig09_layout_obfuscation(benchmark, bench_result):
    measurements = bench_result.evasion_reported + bench_result.evasion_squatting
    per_brand = benchmark(per_brand_layout_distances, measurements)

    rows = sorted(per_brand.items(), key=lambda kv: -kv[1][2])[:8]
    print_exhibit(
        "Fig 9 - mean image-hash distance per brand",
        table(["brand", "mean", "std", "pages"],
              [[brand, f"{mean:.1f}", f"{std:.1f}", n]
               for brand, (mean, std, n) in rows]),
    )

    assert per_brand
    big_brands = [(mean, std) for _, (mean, std, n) in per_brand.items() if n >= 5]
    assert big_brands
    means = [mean for mean, _ in big_brands]
    assert sum(m >= 15 for m in means) / len(means) > 0.7   # ~20+ typical
    # distances differ across brands (no universal threshold)
    assert max(means) - min(means) > 3
