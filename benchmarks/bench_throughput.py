"""Subsystem throughput: the operational costs §3.2/§5 care about.

The paper's deployment story (§7: a continuously-running scanner) depends
on per-unit costs: squat classification per domain, page render + OCR per
page, and feature extraction per page.  These benches time each unit.
"""

from repro.features.extraction import FeatureExtractor
from repro.ocr.engine import OCREngine
from repro.squatting.detector import SquattingDetector
from repro.web.browser import Browser
from repro.web.http import WEB_UA


def test_throughput_squat_classification(benchmark, bench_world):
    detector = SquattingDetector(bench_world.catalog)
    domains = [record.name for record in list(bench_world.zone)[:500]]

    def classify_batch():
        return sum(1 for d in domains if detector.classify_domain(d) is not None)

    hits = benchmark(classify_batch)
    assert hits >= 0


def test_throughput_page_render(benchmark, bench_world):
    browser = Browser(bench_world.host, WEB_UA)
    brand = bench_world.catalog.get("paypal")

    capture = benchmark(browser.visit, f"http://{brand.domain}/")
    assert capture is not None


def test_throughput_ocr(benchmark, bench_world):
    browser = Browser(bench_world.host, WEB_UA)
    capture = browser.visit("http://paypal.com/")
    engine = OCREngine()

    result = benchmark(engine.recognize, capture.screenshot.pixels)
    assert result.text


def test_throughput_feature_extraction(benchmark, bench_world):
    browser = Browser(bench_world.host, WEB_UA)
    capture = browser.visit("http://paypal.com/")
    extractor = FeatureExtractor(extra_lexicon=bench_world.catalog.names())

    features = benchmark(extractor.extract, capture.html,
                         capture.screenshot.pixels)
    assert features.form_count >= 1
