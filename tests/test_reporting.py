"""Run reports and the feedback-retraining loop."""

import json

import pytest

from repro.core.reporting import RunReport, build_report


@pytest.fixture(scope="module")
def report(pipeline_result, micro_world):
    return build_report(pipeline_result, micro_world)


class TestBuildReport:
    def test_squat_section(self, report, pipeline_result):
        assert report.squat_total == len(pipeline_result.squat_matches)
        assert report.squat_types["combo"] > 0
        assert len(report.top_squatted_brands) == 10

    def test_classifier_section(self, report):
        assert set(report.classifiers) == {"naive_bayes", "knn", "random_forest"}
        rf = report.classifiers["random_forest"]
        assert 0 <= rf["fp"] <= 1 and 0 <= rf["auc"] <= 1

    def test_wild_detection_section(self, report, pipeline_result):
        assert [r["population"] for r in report.wild_detection] == [
            "web", "mobile", "union"]
        assert report.verified_total == len(pipeline_result.verified)

    def test_evasion_section(self, report):
        assert set(report.evasion) == {"squatting", "reported"}
        assert report.evasion["squatting"]["string_rate"] >= 0

    def test_blacklist_section(self, report):
        services = [r["service"] for r in report.blacklists]
        assert "Not Detected" in services

    def test_longevity_section(self, report, pipeline_result):
        assert report.longevity["domains"] == len(pipeline_result.verified_domains())
        assert 0.0 <= report.longevity["survival_end"] <= 1.0
        curve = report.longevity["survival_curve"]
        assert curve[0] == [0, 1.0]
        values = [s for _, s in curve]
        assert values == sorted(values, reverse=True)


class TestSerialization:
    def test_json_round_trip(self, report, tmp_path):
        path = tmp_path / "report.json"
        report.save(path)
        loaded = RunReport.load(path)
        assert loaded.to_dict() == report.to_dict()

    def test_json_is_valid(self, report):
        parsed = json.loads(report.to_json())
        assert parsed["squat_total"] == report.squat_total

    def test_empty_report_serializes(self, tmp_path):
        empty = RunReport()
        path = tmp_path / "empty.json"
        empty.save(path)
        assert RunReport.load(path).squat_total == 0


class TestFeedbackRetraining:
    def test_retrain_improves_or_holds(self, pipeline, pipeline_result):
        before = pipeline_result.cv_reports["random_forest"]
        after_reports = pipeline.retrain_with_feedback(
            pipeline_result.ground_truth,
            pipeline_result.flagged,
            pipeline_result.verified,
        )
        after = after_reports["random_forest"]
        # the augmented set is larger and the model must stay in the same
        # quality band (the loop must never catastrophically regress)
        assert after.auc > before.auc - 0.05
        assert after.tp + after.fn >= before.tp + before.fn

    def test_feedback_pages_are_deduplicated(self, pipeline, pipeline_result):
        augmented = list(pipeline_result.ground_truth)
        keys = {(d.domain, d.profile) for d in pipeline_result.flagged}
        # retrain adds at most one page per (domain, profile)
        reports = pipeline.retrain_with_feedback(
            pipeline_result.ground_truth,
            pipeline_result.flagged + pipeline_result.flagged,  # duplicates
            pipeline_result.verified,
        )
        total = reports["random_forest"].tp + reports["random_forest"].fn + \
            reports["random_forest"].tn + reports["random_forest"].fp
        assert total <= len(augmented) + len(keys)
