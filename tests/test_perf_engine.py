"""Execution-engine tests: ordered maps, sharded scan, and the
determinism contract — identical digests and verified domains for any
worker count, with and without the capture cache, under faults, and
across checkpoint/resume splits (DESIGN.md, "The execution engine's
determinism contract")."""

import pytest

from repro.core import PipelineConfig, SquatPhi
from repro.faults import FaultPlan
from repro.perf import CaptureCache, PerfReport, process_map, shard, thread_map
from repro.phishworld.world import WorldConfig, build_world
from repro.squatting.detector import SquattingDetector


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------

class TestShard:
    def test_consecutive_chunks_preserve_order(self):
        assert shard(range(7), 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_exact_multiple(self):
        assert shard([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_empty(self):
        assert shard([], 5) == []

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(ValueError):
            shard([1], 0)


class TestThreadMap:
    def test_results_in_input_order(self):
        items = list(range(40))
        assert thread_map(lambda x: x * x, items, workers=4) == [x * x for x in items]

    def test_serial_fallback_matches(self):
        items = list(range(10))
        assert thread_map(str, items, workers=1) == thread_map(str, items, workers=4)


def _square_chunk(chunk):
    return [x * x for x in chunk]


class TestProcessMap:
    def test_results_in_shard_order(self):
        shards = shard(range(20), 3)
        out = process_map(_square_chunk, shards, workers=2)
        assert [x for chunk in out for x in chunk] == [x * x for x in range(20)]

    def test_serial_fallback_runs_initializer(self):
        called = []
        out = process_map(lambda c: c, [[1]], workers=1,
                          initializer=called.append, initargs=("init",))
        assert out == [[1]] and called == ["init"]


# ----------------------------------------------------------------------
# sharded scan
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_world():
    return build_world(WorldConfig(
        seed=1803, n_organic_domains=120, n_squat_domains=120,
        n_phish_domains=10, phishtank_reports=40,
    ))


class TestShardedScan:
    def test_matches_serial_scan(self, small_world):
        detector = SquattingDetector(small_world.catalog)
        serial = detector.scan(small_world.zone)
        parallel = detector.scan_sharded(small_world.zone, workers=2, chunk_size=37)
        assert parallel == serial

    def test_iter_scan_streams_same_matches(self, small_world):
        detector = SquattingDetector(small_world.catalog)
        assert list(detector.iter_scan(small_world.zone)) == detector.scan(small_world.zone)

    def test_scan_counts_totals(self, small_world):
        detector = SquattingDetector(small_world.catalog)
        counts = detector.scan_counts(small_world.zone)
        assert sum(counts.values()) == len(detector.scan(small_world.zone))


# ----------------------------------------------------------------------
# pipeline determinism across workers / cache / faults
# ----------------------------------------------------------------------

def _world():
    return build_world(WorldConfig(
        seed=1803, n_organic_domains=120, n_squat_domains=120,
        n_phish_domains=10, phishtank_reports=40,
    ))


def _run(crawl_workers, capture_cache, fault_rate=0.0):
    config = PipelineConfig(
        cv_folds=3, rf_trees=8,
        crawl_workers=crawl_workers,
        capture_cache=capture_cache,
        fault_plan=(FaultPlan.uniform(fault_rate, seed=7)
                    if fault_rate else None),
    )
    pipeline = SquatPhi(_world(), config)
    result = pipeline.run(follow_up_snapshots=False)
    return pipeline, result


class TestDeterminismContract:
    @pytest.fixture(scope="class")
    def matrix(self):
        return {
            (workers, cache): _run(workers, cache)
            for workers in (1, 4) for cache in (True, False)
        }

    def test_digest_invariant_across_workers_and_cache(self, matrix):
        digests = {r.crawl_snapshots[0].digest() for _, r in matrix.values()}
        assert len(digests) == 1

    def test_verified_domains_invariant(self, matrix):
        verified = {tuple(r.verified_domains()) for _, r in matrix.values()}
        assert len(verified) == 1

    def test_health_invariant(self, matrix):
        healths = {repr(sorted(r.health.to_dict().items()))
                   for _, r in matrix.values()}
        assert len(healths) == 1

    def test_cache_hits_only_when_enabled(self, matrix):
        for (workers, cache), (pipeline, _) in matrix.items():
            stats = pipeline.perf.cache
            if cache:
                assert stats.any_hits
                assert stats.render_bypasses == 0
            else:
                assert not stats.any_hits
                assert stats.render_bypasses > 0


class TestDeterminismUnderFaults:
    def test_digest_and_output_invariant_at_20pct(self):
        runs = [_run(workers, cache, fault_rate=0.2)
                for workers in (1, 4) for cache in (True, False)]
        digests = {r.crawl_snapshots[0].digest() for _, r in runs}
        verified = {tuple(r.verified_domains()) for _, r in runs}
        injected = {repr(sorted(r.injected_faults.items())) for _, r in runs}
        assert len(digests) == 1
        assert len(verified) == 1
        assert len(injected) == 1


class TestParallelResume:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_interrupted_parallel_crawl_resumes_to_identical_digest(self, workers):
        world_a = _world()
        config = PipelineConfig(
            cv_folds=3, rf_trees=8, crawl_workers=workers,
            fault_plan=FaultPlan.uniform(0.2, seed=7),
        )
        pipeline_a = SquatPhi(world_a, config)
        matches = pipeline_a.detect_squatting()
        domains = [m.domain for m in matches]
        uninterrupted = pipeline_a.crawl_domains(domains, snapshot=0)

        pipeline_b = SquatPhi(_world(), config)
        partial = pipeline_b.crawl_domains(domains, snapshot=0, max_jobs=31)
        assert not partial.complete
        resumed = pipeline_b.crawl_domains(
            domains, snapshot=0, resume=partial.checkpoint)
        assert resumed.complete
        assert resumed.digest() == uninterrupted.digest()

    def test_resume_digest_invariant_across_worker_counts(self):
        digests = set()
        config_matches = None
        for workers in (1, 2, 4, 8):
            config = PipelineConfig(
                cv_folds=3, rf_trees=8, crawl_workers=workers,
                fault_plan=FaultPlan.uniform(0.2, seed=7),
            )
            pipeline = SquatPhi(_world(), config)
            if config_matches is None:
                config_matches = [m.domain for m in pipeline.detect_squatting()]
            partial = pipeline.crawl_domains(config_matches, snapshot=0, max_jobs=17)
            final = pipeline.crawl_domains(
                config_matches, snapshot=0, resume=partial.checkpoint)
            digests.add(final.digest())
        assert len(digests) == 1


class TestPerfReport:
    def test_stage_seconds_accumulate(self):
        report = PerfReport()
        report.record_stage("crawl", 1.5)
        report.record_stage("crawl", 0.5)
        assert report.stage_seconds["crawl"] == pytest.approx(2.0)
        assert report.total_seconds == pytest.approx(2.0)

    def test_pipeline_fills_report(self):
        pipeline, _ = _run(1, True)
        assert set(pipeline.perf.stage_seconds) >= {"scan", "crawl", "train"}
        assert pipeline.perf.cache_enabled
        assert pipeline.perf.to_dict()["cache"]["render_hits"] > 0

    def test_format_mentions_bypasses_when_disabled(self):
        report = PerfReport(cache_enabled=False)
        report.cache.render_bypasses = 3
        assert "bypassed" in report.format()
