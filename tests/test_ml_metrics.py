"""Metrics and cross-validation."""

import numpy as np
import pytest

from repro.ml import (
    MultinomialNaiveBayes,
    auc_score,
    classification_report,
    confusion_matrix,
    cross_validate,
    roc_curve,
    stratified_kfold,
)


class TestConfusion:
    def test_counts(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 0, 1, 1]
        tn, fp, fn, tp = confusion_matrix(y_true, y_pred)
        assert (tn, fp, fn, tp) == (1, 1, 1, 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([1, 0], [1])


class TestROC:
    def test_perfect_scores(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(y, scores) == 1.0

    def test_inverted_scores(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(y, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert abs(auc_score(y, scores) - 0.5) < 0.05

    def test_curve_is_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 100)
        scores = rng.random(100)
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_tied_scores_collapse(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        fpr, tpr, _ = roc_curve(y, scores)
        assert len(fpr) == 2  # origin + single point

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_curve(np.ones(4), np.random.default_rng(0).random(4))


class TestReport:
    def test_rates(self):
        y = np.array([1, 1, 1, 0, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1, 0.7, 0.3])
        report = classification_report(y, scores)
        assert report.false_negative_rate == pytest.approx(1 / 3)
        assert report.false_positive_rate == pytest.approx(1 / 3)
        assert report.accuracy == pytest.approx(4 / 6)
        assert report.tp == 2 and report.fn == 1

    def test_row_tuple(self):
        y = np.array([1, 0])
        report = classification_report(y, np.array([0.9, 0.1]))
        fpr, fnr, auc, acc = report.row()
        assert (fpr, fnr, auc, acc) == (0.0, 0.0, 1.0, 1.0)


class TestKFold:
    def test_partitions_everything_once(self):
        y = np.array([0] * 30 + [1] * 12)
        seen = []
        for train_idx, test_idx in stratified_kfold(y, k=5):
            assert set(train_idx).isdisjoint(test_idx)
            seen.extend(test_idx)
        assert sorted(seen) == list(range(42))

    def test_stratification(self):
        y = np.array([0] * 40 + [1] * 10)
        for _, test_idx in stratified_kfold(y, k=5):
            assert y[test_idx].sum() == 2  # exactly 2 positives per fold

    def test_k_validation(self):
        with pytest.raises(ValueError):
            list(stratified_kfold(np.array([0, 1]), k=1))


def test_cross_validate_pools_scores():
    rng = np.random.default_rng(4)
    x = rng.poisson(0.5, size=(200, 10)).astype(float)
    y = (rng.random(200) < 0.4).astype(int)
    x[y == 1, :2] += 3
    report = cross_validate(lambda: MultinomialNaiveBayes(), x, y, k=4)
    assert report.auc > 0.9
    assert report.tp + report.fn == y.sum()
