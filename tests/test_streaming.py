"""Streaming driver: digest identity with batch, kill/resume, publishing.

The headline contract (ISSUE 8): a streaming run — ingest → delta-scan →
compact over a full event tape — produces a match set byte-identical to a
from-scratch batch scan over the union, at any worker count, and a killed
driver resumes from the artifact store onto the same bytes.
"""

import pytest

from repro.brands import build_paper_catalog
from repro.dns.deltazone import SegmentedZone
from repro.dns.packedzone import PackedZone, pack_zone
from repro.phishworld.events import (
    EventTapeConfig,
    build_tape,
    replay_into_store,
)
from repro.serve import QueryEngine, SnapshotPublisher, serve_load
from repro.squatting.detector import SquattingDetector
from repro.squatting.packedscan import packed_scan
from repro.stages import ArtifactStore, digest_squat_matches
from repro.stream import StreamingDriver

TAPE = EventTapeConfig(seed=11, n_events=700)


@pytest.fixture(scope="module")
def detector():
    return SquattingDetector(build_paper_catalog())


@pytest.fixture(scope="module")
def batch_digest(detector):
    tape = build_tape(TAPE)
    matches = packed_scan(detector, pack_zone(replay_into_store(tape)))
    return digest_squat_matches(matches)


def make_driver(detector, **kwargs):
    kwargs.setdefault("base_events", 250)
    kwargs.setdefault("segment_events", 80)
    kwargs.setdefault("compact_every", 3)
    return StreamingDriver(detector, TAPE, **kwargs)


# ----------------------------------------------------------------------
# streaming == batch
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 4])
def test_streaming_matches_batch(detector, batch_digest, workers):
    outcome = make_driver(detector, workers=workers).run()
    assert not outcome.interrupted
    assert outcome.match_digest == batch_digest
    stats = outcome.stats
    assert stats.digest_checks >= stats.compactions > 0
    assert stats.events == TAPE.n_events - stats.base_events
    assert stats.live_matches == len(outcome.matches)
    assert stats.latencies and stats.latency_p50 > 0.0


def test_streaming_latency_is_sim_clock(detector):
    outcome = make_driver(detector).run()
    # every detection happens at its segment flush, so sim latency is
    # bounded by one segment's worth of the tape, not by host speed
    # (zero is legal: an add on the flush boundary detects instantly)
    tape = build_tape(TAPE)
    span = tape[-1].at - tape[0].at
    assert all(0.0 <= lat <= span for lat in outcome.stats.latencies)


def test_streaming_digest_check_fires_each_compaction(detector):
    outcome = make_driver(detector, compact_every=2).run()
    assert outcome.stats.digest_checks == outcome.stats.compactions
    assert outcome.stats.compactions >= 2


# ----------------------------------------------------------------------
# kill / resume through the artifact store
# ----------------------------------------------------------------------

def test_kill_and_resume_lands_on_batch_bytes(detector, batch_digest,
                                              tmp_path):
    store = ArtifactStore(tmp_path / "store")
    killed = make_driver(detector, store=store).run(limit_segments=3)
    assert killed.interrupted
    assert killed.stats.segments == 3

    resumed = make_driver(detector, store=store).run()
    assert not resumed.interrupted
    assert resumed.match_digest == batch_digest
    # the killed run's completed segments replay from the store
    assert resumed.stats.cached_segments == 3


def test_resume_survives_process_style_restart(detector, batch_digest,
                                               tmp_path):
    # two distinct driver objects over the same on-disk store — the
    # stage-graph fingerprints, not in-memory state, carry the resume
    store_dir = tmp_path / "store"
    make_driver(detector, store=ArtifactStore(store_dir)).run(
        limit_segments=2)
    second = make_driver(detector, store=ArtifactStore(store_dir)).run()
    assert second.match_digest == batch_digest
    assert second.stats.cached_segments == 2


def test_delta_dir_gets_segment_files(detector, tmp_path):
    delta_dir = tmp_path / "deltas"
    outcome = make_driver(detector, delta_dir=delta_dir).run()
    files = sorted(path.name for path in delta_dir.glob("seg-*.pzon"))
    assert len(files) == outcome.stats.segments


# ----------------------------------------------------------------------
# publishing + serving pickup
# ----------------------------------------------------------------------

def test_publisher_chain_grows_and_serving_sees_deltas(detector, tmp_path):
    publisher = SnapshotPublisher(tmp_path / "pub")
    driver = make_driver(detector, publisher=publisher, compact_every=4)
    outcome = driver.run(limit_segments=2)   # stop before any compaction
    generation, base_path, delta_paths = publisher.current_chain()
    assert len(delta_paths) == 2
    assert generation == 3                   # base + two delta publishes

    chain = SegmentedZone.load_chain(base_path, delta_paths)
    chain.verify()
    engine = QueryEngine(detector, chain, generation=generation)
    streamed = [m.domain for m in outcome.matches][:5]
    verdicts = engine.lookup_batch(streamed + ["not-on-the-tape-zzz.com"])
    assert all(v.registered for v in verdicts[:-1])
    assert all(v.is_squat for v in verdicts[:-1])
    assert not verdicts[-1].registered


def test_compaction_resets_published_chain(detector, tmp_path):
    publisher = SnapshotPublisher(tmp_path / "pub")
    make_driver(detector, publisher=publisher).run()
    generation, _base, delta_paths = publisher.current_chain()
    assert delta_paths == []                 # final publish was a compaction
    assert generation > 1


def test_serve_load_hot_reloads_published_deltas(detector, tmp_path):
    publisher = SnapshotPublisher(tmp_path / "pub")
    driver = make_driver(detector, publisher=publisher, compact_every=4)
    outcome = driver.run(limit_segments=2)
    generation, base_path, delta_paths = publisher.current_chain()
    chain = SegmentedZone.load_chain(base_path, delta_paths)

    # a delta-added squat: present in the chain, absent from the base
    base = PackedZone.load(base_path)
    added = next(m.domain for m in outcome.matches
                 if not base.has_registered_domain(m.domain))
    requests = [(i * 0.01, added) for i in range(8)]
    verdicts, stats = serve_load(detector, base, requests,
                                 workers=1, publisher=publisher)
    assert stats.generation_swaps == 1
    assert all(v.generation == generation for v in verdicts)
    assert all(v.registered and v.is_squat for v in verdicts)
    # and the chain answers exactly like a direct engine over it
    direct = QueryEngine(detector, chain,
                         generation=generation).lookup_batch([added])
    assert verdicts[0] == direct[0]


# ----------------------------------------------------------------------
# publisher crash safety (satellite)
# ----------------------------------------------------------------------

def test_publish_crash_before_pointer_swap_keeps_old_generation(
        detector, tmp_path, monkeypatch):
    publisher = SnapshotPublisher(tmp_path / "pub")
    tape = build_tape(TAPE)
    zone = pack_zone(replay_into_store(tape[:200]))
    generation, path = publisher.publish(zone)

    real = SnapshotPublisher._write_atomic

    def crash_on_pointer(self, target, data):
        if target.name == "CURRENT":
            raise OSError("simulated crash between data write and swap")
        real(self, target, data)

    monkeypatch.setattr(SnapshotPublisher, "_write_atomic", crash_on_pointer)
    with pytest.raises(OSError):
        publisher.publish(pack_zone(replay_into_store(tape[:300])))
    monkeypatch.setattr(SnapshotPublisher, "_write_atomic", real)

    # the previous generation is still live and fully readable
    state = publisher.current()
    assert state == (generation, path)
    survivor = publisher.open_current()
    survivor.verify()
    assert survivor.generation == generation
    # and a healthy retry publishes over the orphaned data file cleanly
    next_generation, _ = publisher.publish(zone)
    assert next_generation == generation + 1


def test_publish_delta_requires_a_base(tmp_path):
    publisher = SnapshotPublisher(tmp_path / "pub")
    with pytest.raises(ValueError):
        publisher.publish_delta(b"anything")


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------

def test_cli_stream_smoke(capsys):
    from repro.cli import main

    code = main(["stream", "--events", "500", "--base-events", "200",
                 "--segment-events", "100", "--compact-every", "2",
                 "--seed", "9"])
    assert code == 0
    out = capsys.readouterr().out
    assert "match digest:" in out
    assert "streaming-vs-batch digest checks" in out


def test_cli_stream_json_deterministic(capsys):
    from repro.cli import main

    args = ["stream", "--events", "400", "--base-events", "150",
            "--segment-events", "90", "--seed", "13", "--json"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out

    import json
    a, b = json.loads(first), json.loads(second)
    for volatile in ("wall_seconds", "events_per_sec"):
        a.pop(volatile), b.pop(volatile)
    assert a == b
