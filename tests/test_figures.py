"""Figure data producers (unit level, synthetic inputs)."""

import pytest

from repro.analysis.figures import (
    brand_accumulation_curve,
    phish_squat_type_histogram,
    phishtank_squatting_histogram,
    squat_type_histogram,
    top_brands_by_count,
    top_targeted_brands,
    verified_phish_cdf,
)
from repro.core.pipeline import VerifiedPhish
from repro.phishworld.phishtank import PhishTankReport
from repro.squatting.types import SquatMatch, SquatType


def match(domain, brand, squat_type=SquatType.COMBO):
    return SquatMatch(domain=domain, brand=brand, squat_type=squat_type)


def verified(domain, brand, squat_type=SquatType.COMBO, profiles=("web",)):
    return VerifiedPhish(domain=domain, brand=brand, squat_type=squat_type,
                         profiles=profiles)


class TestSquatHistogram:
    def test_counts_and_order(self):
        matches = [
            match("a-x.com", "a"), match("b-x.com", "b"),
            match("a1.com", "a", SquatType.TYPO),
            match("xn--a.com", "a", SquatType.HOMOGRAPH),
        ]
        histogram = squat_type_histogram(matches)
        assert list(histogram) == ["homograph", "bits", "typo", "combo", "wrongTLD"]
        assert histogram["combo"] == 2
        assert histogram["bits"] == 0

    def test_empty(self):
        assert sum(squat_type_histogram([]).values()) == 0


class TestAccumulation:
    def test_curve_values(self):
        matches = [match(f"a{i}.com", "a") for i in range(3)]
        matches += [match("b0.com", "b")]
        curve = brand_accumulation_curve(matches)
        assert curve == [75.0, 100.0]

    def test_empty(self):
        assert brand_accumulation_curve([]) == []


class TestTopBrands:
    def test_percentages(self):
        matches = [match(f"a{i}.com", "a") for i in range(3)]
        matches += [match("b0.com", "b")]
        rows = top_brands_by_count(matches, n=2)
        assert rows[0] == ("a", 3, 75.0)


class TestPhishTankHistogram:
    def test_no_bucket(self):
        reports = [
            PhishTankReport(url="u", domain="d1.com", brand="x", squat_type=None),
            PhishTankReport(url="u", domain="d2.com", brand="x", squat_type="combo"),
        ]
        histogram = phishtank_squatting_histogram(reports)
        assert histogram["No"] == 1
        assert histogram["combo"] == 1
        assert histogram["bits"] == 0


class TestVerifiedViews:
    VERIFIED = [
        verified("g1.com", "google", profiles=("web", "mobile")),
        verified("g2.com", "google", profiles=("mobile",)),
        verified("f1.com", "facebook", SquatType.TYPO, profiles=("web",)),
    ]

    def test_cdf(self):
        points = verified_phish_cdf(self.VERIFIED)
        assert points == [(1, 50.0), (2, 100.0)]

    def test_cdf_profile_filter(self):
        points = verified_phish_cdf(self.VERIFIED, profile="mobile")
        # only google has mobile pages -> one brand with 2 domains
        assert points == [(2, 100.0)]

    def test_cdf_empty(self):
        assert verified_phish_cdf([]) == []

    def test_type_histogram(self):
        histogram = phish_squat_type_histogram(self.VERIFIED)
        assert histogram["combo"] == 2
        assert histogram["typo"] == 1

    def test_top_targeted(self):
        rows = top_targeted_brands(self.VERIFIED, n=5)
        assert rows[0] == ("google", 1, 2)
        assert rows[1] == ("facebook", 1, 0)
