"""Homograph squatting model: ASCII and IDN families."""

import pytest

from repro.dns.idna import label_to_ascii
from repro.squatting.homograph import HomographModel


@pytest.fixture(scope="module")
def model():
    return HomographModel()


class TestGeneration:
    def test_ascii_variants_include_digit_swaps(self, model):
        variants = model.generate_ascii("facebook")
        assert "faceb00k" in variants
        assert "facebook" not in variants

    def test_idn_variants_are_punycoded(self, model):
        variants = model.generate_idn("facebook")
        assert variants
        assert all(v.startswith("xn--") for v in variants)

    def test_known_idn_variant_present(self, model):
        assert label_to_ascii("fàcebook") in model.generate_idn("facebook")

    def test_combined_generation(self, model):
        variants = model.generate("paypal")
        assert any(v.startswith("xn--") for v in variants)
        assert any(not v.startswith("xn--") for v in variants)

    def test_max_variants_cap(self, model):
        capped = model.generate_ascii("facebook", max_variants=3)
        assert len(capped) <= 4  # cap is approximate by construction


class TestDetection:
    def test_ascii_homograph(self, model):
        assert model.matches("faceb00k", "facebook") == "ascii"

    def test_idn_homograph(self, model):
        assert model.matches("xn--fcebook-8va", "facebook") == "idn"

    def test_cyrillic_idn(self, model):
        encoded = label_to_ascii("pаypal")  # cyrillic а
        assert model.matches(encoded, "paypal") == "idn"

    def test_identity_not_homograph(self, model):
        assert model.matches("facebook", "facebook") is None

    def test_unrelated_label(self, model):
        assert model.matches("example", "facebook") is None

    def test_invalid_punycode_is_rejected_quietly(self, model):
        assert model.matches("xn--!!!", "facebook") is None

    def test_generated_ascii_variants_detected(self, model):
        for variant in sorted(model.generate_ascii("google"))[:100]:
            assert model.matches(variant, "google") is not None, variant

    def test_generated_idn_variants_detected(self, model):
        for variant in sorted(model.generate_idn("google"))[:100]:
            assert model.matches(variant, "google") == "idn", variant


def test_reduced_table_reduces_recall():
    """The DNSTwist-subset ablation: fewer confusables, fewer detections."""
    from repro.squatting.confusables import dnstwist_subset

    full = HomographModel()
    reduced = HomographModel(confusables=dnstwist_subset())
    full_variants = full.generate_idn("apple")
    reduced_variants = reduced.generate_idn("apple")
    assert reduced_variants < full_variants
