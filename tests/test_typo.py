"""Typo squatting model: the four §3.1 mechanisms."""

import pytest

from repro.squatting.typo import TypoModel


@pytest.fixture(scope="module")
def model():
    return TypoModel()


class TestGeneration:
    def test_generates_paper_examples(self, model):
        variants = model.generate("facebook")
        assert "facebok" in variants        # omission
        assert "faceboook" in variants      # repetition
        assert "fcaebook" in variants       # vowel swap / transposition
        assert "facebookj" in variants      # insertion (URLCrazy example)
        assert "face-book" in variants      # hyphen insertion

    def test_excludes_original(self, model):
        assert "facebook" not in model.generate("facebook")

    def test_no_edge_hyphens(self, model):
        for variant in model.generate("uber"):
            assert not variant.startswith("-")
            assert not variant.endswith("-")

    def test_omission_count(self, model):
        # distinct single-deletions of "google": goggle counted once
        omissions = set(model.omissions("google"))
        assert "oogle" in omissions and "googl" in omissions
        assert len(omissions) <= 6

    def test_keyboard_insertions_are_subset_of_insertions(self, model):
        keyboard = set(model.keyboard_insertions("uber"))
        full = set(model.insertions("uber"))
        assert keyboard <= full
        assert keyboard  # non-empty


class TestDetection:
    @pytest.mark.parametrize("label,target,mechanism", [
        ("facebo0ok", "facebook", "insertion"),
        ("face-book", "facebook", "insertion"),
        ("facebok", "facebook", "omission"),
        ("faceboook", "facebook", "repetition"),
        ("fcaebook", "facebook", "transposition"),
        ("gooogle", "google", "repetition"),
        ("ggoogle", "google", "repetition"),
    ])
    def test_positive(self, model, label, target, mechanism):
        assert model.matches(label, target) == mechanism

    @pytest.mark.parametrize("label,target", [
        ("facebook", "facebook"),       # identity
        ("fakebook", "facebook"),       # substitution is not a typo type
        ("facebooking", "facebook"),    # two insertions
        ("fcbk", "facebook"),           # too many deletions
        ("koobecaf", "facebook"),       # reversal
    ])
    def test_negative(self, model, label, target):
        assert model.matches(label, target) is None

    def test_generated_variants_are_detected(self, model):
        for variant in sorted(model.generate("paypal"))[:200]:
            assert model.matches(variant, "paypal") is not None, variant
