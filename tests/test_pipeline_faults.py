"""Graceful degradation of the whole pipeline under injected faults.

Pins the PR's acceptance criteria: with a 20% compound fault rate across
DNS + HTTP + browser, a full SquatPhi run completes without raising,
reports non-zero dead letters / degraded stages in its health report, the
same seed reproduces identical results, and an interrupted crawl resumed
from its checkpoint matches an uninterrupted one.
"""

import numpy as np
import pytest

from repro.core import BrandMonitor, PipelineConfig, SquatPhi
from repro.dns.zone import ZoneStore
from repro.faults import DNSFault, FaultInjector, FaultKind, FaultPlan
from repro.ocr.engine import OCREngine
from repro.phishworld.world import WorldConfig, build_world

SMALL = WorldConfig(seed=99, n_organic_domains=60, n_squat_domains=80,
                    n_phish_domains=8, phishtank_reports=40)

FAULTY = PipelineConfig(
    cv_folds=3, rf_trees=8,
    fault_plan=FaultPlan.uniform(0.2, seed=17),
)


def faulted_pipeline():
    return SquatPhi(build_world(SMALL), FAULTY)


@pytest.fixture(scope="module")
def faulted_result():
    pipeline = faulted_pipeline()
    return pipeline, pipeline.run(follow_up_snapshots=True)


class TestFullRunUnderFaults:
    def test_run_completes_and_reports_damage(self, faulted_result):
        _, result = faulted_result
        health = result.health
        assert health.dead_letters > 0
        assert health.retries > 0
        assert health.degraded          # at least one stage skipped work
        assert result.injected_faults   # the world actually misbehaved
        assert set(result.injected_faults) & set(FaultKind.TRANSPORT)

    def test_snapshots_record_dead_letters(self, faulted_result):
        _, result = faulted_result
        letters = 0
        for snapshot in result.crawl_snapshots:
            assert snapshot.health.dead_letters == len(snapshot.dead_letters)
            for letter in snapshot.dead_letters:
                letters += 1
                hit = snapshot.get(letter.domain, letter.profile)
                assert hit is not None and not hit.live
        assert letters > 0

    def test_pipeline_health_aggregates_snapshots(self, faulted_result):
        _, result = faulted_result
        snap_attempts = sum(s.health.attempts for s in result.crawl_snapshots)
        assert result.health.attempts >= snap_attempts

    def test_same_seed_reproduces_identical_run(self, faulted_result):
        _, first = faulted_result
        second = faulted_pipeline().run(follow_up_snapshots=True)
        assert [s.digest() for s in first.crawl_snapshots] == [
            s.digest() for s in second.crawl_snapshots]
        assert first.health.to_dict() == second.health.to_dict()
        assert first.injected_faults == second.injected_faults
        assert first.verified_domains() == second.verified_domains()
        assert [(d.domain, d.profile, d.score) for d in first.flagged] == [
            (d.domain, d.profile, d.score) for d in second.flagged]

    def test_fault_free_config_reports_clean_health(self):
        pipeline = SquatPhi(build_world(SMALL),
                            PipelineConfig(cv_folds=3, rf_trees=8))
        result = pipeline.run(follow_up_snapshots=False)
        assert result.health.dead_letters == 0
        assert result.health.retries == 0
        assert not result.injected_faults


class TestPipelineCheckpointResume:
    def test_interrupted_crawl_resumes_identically(self):
        pipeline_a = faulted_pipeline()
        pipeline_b = faulted_pipeline()
        domains = [m.domain for m in pipeline_a.detect_squatting()]
        assert domains == [m.domain for m in pipeline_b.detect_squatting()]

        uninterrupted = pipeline_a.crawl_domains(domains)

        split = len(domains)  # interrupt mid-snapshot (half the job list)
        partial = pipeline_b.crawl_domains(domains, max_jobs=split)
        assert not partial.complete
        resumed = pipeline_b.crawl_domains(domains, resume=partial.checkpoint)
        assert resumed.complete
        assert resumed.digest() == uninterrupted.digest()
        # health is folded into the run exactly once despite two passes
        assert pipeline_b.health.attempts == pipeline_a.health.attempts


class TestZoneResolve:
    def test_resolve_without_injector_is_a_lookup(self):
        zone = ZoneStore()
        zone.add_name("example.com", ip="1.2.3.4")
        record = zone.resolve("example.com")
        assert record is not None and record.ip == "1.2.3.4"

    def test_resolve_can_servfail(self):
        zone = ZoneStore()
        zone.add_name("example.com")
        zone.fault_injector = FaultInjector(FaultPlan(seed=1, dns_servfail_rate=0.9))
        with pytest.raises(DNSFault):
            for attempt in range(50):
                zone.resolve("example.com", attempt=attempt)
        # plain indexed reads never fault
        assert zone.get("example.com") is not None


class TestOCRGarbling:
    def _raster(self):
        from repro.web.browser import Browser
        from repro.web.http import WEB_UA

        world = build_world(SMALL)
        brand = world.catalog.get("paypal")
        capture = Browser(world.host, WEB_UA).visit(f"http://{brand.domain}/")
        return capture.screenshot.pixels

    def test_garbled_raster_reads_worse(self):
        pixels = self._raster()
        clean = OCREngine().recognize(pixels)
        injector = FaultInjector(FaultPlan(seed=2, ocr_garble_rate=0.999))
        garbled = OCREngine(fault_injector=injector).recognize(pixels)
        assert injector.counts().get(FaultKind.OCR_GARBLE, 0) >= 1
        assert garbled.text != clean.text

    def test_garbling_is_deterministic(self):
        pixels = self._raster()
        injector_a = FaultInjector(FaultPlan(seed=2, ocr_garble_rate=0.999))
        injector_b = FaultInjector(FaultPlan(seed=2, ocr_garble_rate=0.999))
        assert (OCREngine(fault_injector=injector_a).recognize(pixels).text ==
                OCREngine(fault_injector=injector_b).recognize(pixels).text)


class TestMonitorDegradation:
    def test_monitor_survives_fault_weather(self):
        pipeline = faulted_pipeline()
        matches = pipeline.detect_squatting()
        ground_truth = pipeline.collect_ground_truth(matches)
        pipeline.train(ground_truth, evaluate_all=False)

        monitor = BrandMonitor(pipeline, brands=[pipeline.world.catalog.names()[0]])
        monitor.baseline(pipeline.world.zone)
        # second observation round over the same zone must not raise even
        # though visits and DNS lookups can fault
        alerts = monitor.observe(pipeline.world.zone)
        summary = monitor.summary()
        assert summary["rounds"] == 1
        assert summary["degraded_visits"] == monitor.degraded_visits
        assert all(isinstance(a.degraded, bool) for a in alerts)
