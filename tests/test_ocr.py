"""OCR: font, engine, segmentation, noise, and the screenshot contract."""

import numpy as np
import pytest

from repro.ocr.engine import OCREngine, remove_form_lines
from repro.ocr.font import (
    FONT,
    GLYPH_HEIGHT,
    GLYPH_WIDTH,
    glyph_bitmap,
    normalize_for_font,
    render_text,
)
from repro.web.html import document, el, parse_html
from repro.web.screenshot import render_page


@pytest.fixture(scope="module")
def engine():
    return OCREngine()


@pytest.fixture(scope="module")
def clean_engine():
    return OCREngine(error_rate=0.0, drop_rate=0.0)


class TestFont:
    def test_glyph_dimensions(self):
        for char, glyph in FONT.items():
            assert glyph.shape == (GLYPH_HEIGHT, GLYPH_WIDTH), char

    def test_glyphs_are_distinct(self):
        seen = {}
        for char, glyph in FONT.items():
            key = glyph.tobytes()
            assert key not in seen, f"{char} duplicates {seen.get(key)}"
            seen[key] = char

    def test_lowercase_lookup(self):
        assert np.array_equal(glyph_bitmap("A"), FONT["a"])

    def test_unsupported_char_is_none(self):
        assert glyph_bitmap("π") is None or True  # may normalize; see below

    def test_normalize_accents(self):
        assert normalize_for_font("fàçebook") == "facebook"

    def test_normalize_unknown_to_space(self):
        assert normalize_for_font("a☂b") == "a b"

    def test_render_text_width(self):
        strip = render_text("abc")
        assert strip.shape == (GLYPH_HEIGHT, 3 * (GLYPH_WIDTH + 1) - 1)

    def test_render_empty(self):
        assert render_text("").shape == (GLYPH_HEIGHT, 0)


class TestRecognition:
    def test_exact_recognition_without_noise(self, clean_engine):
        raster = np.full((20, 200), 255, dtype=np.uint8)
        strip = render_text("password login")
        raster[5:5 + strip.shape[0], 3:3 + strip.shape[1]][strip == 1] = 0
        result = clean_engine.recognize(raster)
        assert result.text == "password login"
        assert result.mean_confidence > 0.95

    def test_multiline_recognition(self, clean_engine):
        raster = np.full((60, 200), 255, dtype=np.uint8)
        for i, line in enumerate(["first line", "second line"]):
            strip = render_text(line)
            y = 5 + i * 20
            raster[y:y + strip.shape[0], 3:3 + strip.shape[1]][strip == 1] = 0
        result = clean_engine.recognize(raster)
        assert result.lines == ["first line", "second line"]

    def test_blank_raster(self, clean_engine):
        result = clean_engine.recognize(np.full((50, 50), 255, dtype=np.uint8))
        assert result.text == ""
        assert result.cells_scanned == 0

    def test_noise_is_deterministic_per_raster(self, engine):
        raster = np.full((20, 300), 255, dtype=np.uint8)
        strip = render_text("the quick brown fox jumps")
        raster[5:5 + strip.shape[0], 3:3 + strip.shape[1]][strip == 1] = 0
        assert engine.recognize(raster).text == engine.recognize(raster).text

    def test_noise_rate_is_plausible(self):
        noisy = OCREngine(error_rate=0.2, drop_rate=0.0)
        raster = np.full((20, 380), 255, dtype=np.uint8)
        text = "abcdefghijklmnopqrstuvwxyz0123456789"
        strip = render_text(text)
        raster[5:5 + strip.shape[0], 3:3 + strip.shape[1]][strip == 1] = 0
        recognized = noisy.recognize(raster).text.replace(" ", "")
        # at 20% confusion some characters must differ, but not all
        diffs = sum(1 for a, b in zip(text, recognized) if a != b)
        assert 0 < diffs < len(text) // 2

    def test_page_screenshot_contract(self, engine):
        """Text drawn into images is recovered, per the paper's key insight."""
        page = document(
            "Login",
            el("img", data_embedded_text="paypal", height="48"),
            el("form", el("input", type="password", placeholder="password")),
        )
        shot = render_page(parse_html(page.to_html()))
        text = engine.recognize(shot.pixels).text
        assert "paypal" in text or "paypa1" in text or "pavpal" in text
        assert "passw" in text  # possibly noisy suffix


class TestLineRemoval:
    def test_long_runs_are_removed(self):
        ink = np.zeros((20, 40), dtype=np.int16)
        ink[10, 2:30] = 1  # a horizontal rule
        cleaned = remove_form_lines(ink)
        assert cleaned.sum() == 0

    def test_glyph_ink_survives(self):
        strip = render_text("password").astype(np.int16)
        padded = np.zeros((strip.shape[0] + 4, strip.shape[1] + 4), dtype=np.int16)
        padded[2:-2, 2:-2] = strip
        cleaned = remove_form_lines(padded)
        assert cleaned.sum() == padded.sum()

    def test_box_border_removed_but_content_kept(self):
        strip = render_text("user").astype(np.int16)
        height, width = strip.shape
        canvas = np.zeros((height + 8, width + 8), dtype=np.int16)
        canvas[4:4 + height, 4:4 + width] = strip
        canvas[0, :] = 1
        canvas[-1, :] = 1
        canvas[:, 0] = 1
        canvas[:, -1] = 1
        cleaned = remove_form_lines(canvas)
        assert cleaned.sum() == strip.sum()


class TestLegacyEquivalence:
    """The batched decode and cumsum morphology are byte-for-byte twins of
    the reference cell-by-cell paths (``legacy=True``)."""

    def test_runs_at_least_matches_reference(self):
        from repro.ocr.engine import _runs_at_least, _runs_at_least_reference

        rng = np.random.default_rng(11)
        for _ in range(25):
            shape = (int(rng.integers(1, 40)), int(rng.integers(1, 40)))
            ink = (rng.random(shape) < 0.45).astype(np.int16)
            for length in (2, GLYPH_WIDTH + 2, GLYPH_HEIGHT + 2, 50):
                for axis in (0, 1):
                    assert np.array_equal(
                        _runs_at_least(ink, length, axis),
                        _runs_at_least_reference(ink, length, axis),
                    )

    def test_remove_form_lines_matches_reference(self):
        rng = np.random.default_rng(4)
        rasters = [np.zeros((12, 12), dtype=np.int16)]
        for _ in range(20):
            shape = (int(rng.integers(3, 60)), int(rng.integers(3, 60)))
            rasters.append((rng.random(shape) < 0.4).astype(np.int16))
        # a framed page: borders must go, inner ink must stay, both paths
        framed = np.zeros((30, 40), dtype=np.int16)
        framed[0, :] = framed[-1, :] = framed[:, 0] = framed[:, -1] = 1
        framed[10:17, 8:13] = glyph_bitmap("a")
        rasters.append(framed)
        for ink in rasters:
            assert np.array_equal(remove_form_lines(ink),
                                  remove_form_lines(ink, legacy=True))

    def test_recognize_matches_reference_on_rendered_pages(self):
        fast = OCREngine()
        slow = OCREngine(legacy=True)
        texts = [
            "please enter your password",
            "secure login\nverify account",
            "il1l li lli",     # narrow glyphs exercise the alignment retry
            "a",
            "update  billing   details now",
        ]
        for text in texts:
            pixels = np.full((60, 400), 255, dtype=np.uint8)
            raster = render_text(text.split("\n")[0])
            y = 4
            for line in text.split("\n"):
                raster = render_text(line)
                h, w = raster.shape
                pixels[y:y + h, 4:4 + w] = np.where(raster > 0, 0, 255)
                y += h + 3
            a = fast.recognize(pixels)
            b = slow.recognize(pixels)
            assert (a.text, a.lines, a.mean_confidence, a.cells_scanned) == \
                (b.text, b.lines, b.mean_confidence, b.cells_scanned)

    def test_recognize_matches_reference_under_garble_noise(self):
        # high noise exercises the drop/confusion replay at every cell
        fast = OCREngine(error_rate=0.4, drop_rate=0.1)
        slow = OCREngine(error_rate=0.4, drop_rate=0.1, legacy=True)
        raster = render_text("password account verify")
        pixels = np.where(raster > 0, 0, 255).astype(np.uint8)
        a = fast.recognize(pixels)
        b = slow.recognize(pixels)
        assert a.text == b.text
        assert a.mean_confidence == b.mean_confidence
