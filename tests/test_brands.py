"""Brand catalog and the synthetic Alexa service."""

import pytest

from repro.brands.alexa import ALEXA_CATEGORIES, AlexaRanking, synth_brand_name
from repro.brands.catalog import Brand, BrandCatalog, merge_brand_domains


class TestCatalog:
    def test_paper_size(self, catalog):
        assert len(catalog) == 702  # §3.1: 702 unique brands

    def test_seed_brands_present(self, catalog):
        for name in ("google", "facebook", "paypal", "santander", "adp"):
            assert name in catalog

    def test_core_label_and_tld(self):
        brand = Brand(name="santander", domain="santander.co.uk")
        assert brand.core_label == "santander"
        assert brand.tld == "co.uk"

    def test_duplicate_add_merges_sources(self):
        catalog = BrandCatalog()
        catalog.add(Brand(name="x", domain="x.com", sources=("alexa",)))
        catalog.add(Brand(name="x", domain="x.com", sources=("phishtank",)))
        assert len(catalog) == 1
        assert set(catalog.get("x").sources) == {"alexa", "phishtank"}

    def test_by_category_and_source(self, catalog):
        finance = catalog.by_category("finance")
        assert any(b.name == "paypal" for b in finance)
        assert catalog.by_source("phishtank")

    def test_all_categories_populated(self, catalog):
        for category in ALEXA_CATEGORIES:
            assert catalog.by_category(category), category

    def test_core_labels_unique_per_brand_key(self, catalog):
        assert len(catalog.core_labels()) >= 0.99 * len(catalog)


class TestMerge:
    def test_merges_same_registered_domain(self):
        merged = merge_brand_domains([
            ("niams", "niams.nih.gov"),
            ("nichd", "nichd.nih.gov"),
            ("cdc", "cdc.gov"),
        ])
        domains = [d for _, d in merged]
        assert domains.count("nih.gov") == 1
        assert "cdc.gov" in domains

    def test_keeps_first_name(self):
        merged = merge_brand_domains([("a", "x.com"), ("b", "www.x.com")])
        assert merged == [("a", "x.com")]


class TestAlexa:
    def test_explicit_ranks(self):
        alexa = AlexaRanking()
        alexa.assign_rank("top.com", 1)
        assert alexa.rank("top.com") == 1
        assert alexa.is_ranked("top.com")

    def test_auto_increment(self):
        alexa = AlexaRanking()
        first = alexa.assign_rank("a.com")
        second = alexa.assign_rank("b.com")
        assert second == first + 1

    def test_unranked_is_beyond_universe(self):
        alexa = AlexaRanking(universe_size=1000)
        assert alexa.rank("nowhere.example") > 1000
        assert not alexa.is_ranked("nowhere.example")

    def test_pseudo_rank_is_deterministic(self):
        alexa = AlexaRanking()
        assert alexa.rank("stable.com") == alexa.rank("stable.com")

    def test_buckets(self):
        alexa = AlexaRanking()
        alexa.assign_rank("a.com", 500)
        alexa.assign_rank("b.com", 5000)
        assert alexa.bucket("a.com") == "(0-1000]"
        assert alexa.bucket("b.com") == "(1000-10000]"
        assert alexa.bucket("tail.zz").startswith("(1000000+")

    def test_histogram_covers_all_buckets(self):
        alexa = AlexaRanking()
        alexa.assign_rank("a.com", 10)
        histogram = alexa.histogram(["a.com", "unranked.biz"])
        assert histogram["(0-1000]"] == 1
        assert sum(histogram.values()) == 2


def test_synth_brand_names_are_deterministic_and_lexical():
    assert synth_brand_name(5) == synth_brand_name(5)
    name = synth_brand_name(123)
    assert name.isalpha()
    assert 3 <= len(name) <= 16
