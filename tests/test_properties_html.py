"""Property-based tests for the HTML document model."""

from hypothesis import given, settings, strategies as st

from repro.web.html import Element, el, parse_html

# Text safe for round-tripping: the serializer escapes &<>, the parser
# unescapes; whitespace normalisation makes exact-text comparison fuzzy, so
# we generate single-line, trimmed text.
safe_text = st.text(
    alphabet=st.characters(blacklist_characters="<>&\n\r\t",
                           blacklist_categories=("Cs", "Cc")),
    min_size=1, max_size=20,
).map(str.strip).filter(bool)

tag_names = st.sampled_from(["div", "p", "span", "h1", "h2", "a", "label"])
attr_names = st.sampled_from(["id", "class", "href", "name", "data-x"])
attr_values = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_ .", min_size=0, max_size=12)


@st.composite
def element_trees(draw, depth=0):
    tag = draw(tag_names)
    attrs = draw(st.dictionaries(attr_names, attr_values, max_size=2))
    node = Element(tag=tag, attrs=dict(attrs))
    if depth < 2:
        children = draw(st.lists(
            st.one_of(
                safe_text,
                element_trees(depth=depth + 1),
            ),
            max_size=3,
        ))
        for child in children:
            # adjacent text nodes are indistinguishable after serialization
            # (they concatenate), so merge them up front
            if (isinstance(child, str) and node.children
                    and isinstance(node.children[-1], str)):
                node.children[-1] += child
            else:
                node.append(child)
    return node


def tag_sequence(root):
    return [node.tag for node in root.iter() if node.tag != "#document"]


def all_text_tokens(root):
    return [token for token in root.text().split() if token]


@given(element_trees())
@settings(max_examples=150, deadline=None)
def test_serialize_parse_preserves_structure(tree):
    markup = tree.to_html()
    parsed = parse_html(markup)
    assert tag_sequence(parsed) == tag_sequence(tree)


@given(element_trees())
@settings(max_examples=150, deadline=None)
def test_serialize_parse_preserves_text_tokens(tree):
    parsed = parse_html(tree.to_html())
    assert all_text_tokens(parsed) == all_text_tokens(tree)


@given(element_trees())
@settings(max_examples=100, deadline=None)
def test_serialize_parse_preserves_attributes(tree):
    parsed = parse_html(tree.to_html())
    originals = [n for n in tree.iter()]
    reparsed = [n for n in parsed.iter() if n.tag != "#document"]
    for original, round_tripped in zip(originals, reparsed):
        for key, value in original.attrs.items():
            assert round_tripped.get(key) == value


@given(st.lists(safe_text, min_size=1, max_size=5))
@settings(max_examples=100)
def test_el_text_children_concatenate(texts):
    node = el("p", *texts)
    assert node.own_text == "".join(texts)


@given(element_trees())
@settings(max_examples=100, deadline=None)
def test_iter_visits_every_find_all_hit(tree):
    for tag in {"div", "p", "a"}:
        assert len(tree.find_all(tag)) == sum(
            1 for node in tree.iter() if node.tag == tag)
