"""JavaScript tokenizer and obfuscation indicators."""

import pytest

from repro.web.javascript import (
    ObfuscationIndicators,
    analyze_script,
    analyze_scripts,
    tokenize_js,
)


class TestTokenizer:
    def test_identifiers_numbers_puncts(self):
        tokens = tokenize_js("var x = 42;")
        kinds = [(t.kind, t.value) for t in tokens]
        assert ("identifier", "var") in kinds
        assert ("identifier", "x") in kinds
        assert ("number", "42") in kinds
        assert ("punct", ";") in kinds

    def test_string_literals_keep_body(self):
        tokens = tokenize_js("a = 'hello world';")
        assert ("string", "hello world") in [(t.kind, t.value) for t in tokens]

    def test_escaped_quotes_inside_strings(self):
        tokens = tokenize_js(r'a = "say \"hi\"";')
        strings = [t.value for t in tokens if t.kind == "string"]
        assert strings == [r'say \"hi\"']

    def test_line_comments_are_skipped(self):
        tokens = tokenize_js("// eval everywhere\nvar a = 1;")
        assert all(t.value != "eval" for t in tokens)

    def test_block_comments_are_skipped(self):
        tokens = tokenize_js("/* eval */ var a = 1;")
        assert all(t.value != "eval" for t in tokens)

    def test_unterminated_string_consumes_to_eof(self):
        tokens = tokenize_js("a = 'oops")
        assert tokens[-1] == ("string", "oops")

    def test_template_literals(self):
        tokens = tokenize_js("a = `tpl`;")
        assert ("string", "tpl") in [(t.kind, t.value) for t in tokens]


class TestIndicators:
    def test_clean_script(self):
        indicators = analyze_script("function add(a, b) { return a + b; }")
        assert not indicators.is_obfuscated
        assert indicators.string_function_calls == 0

    def test_fromcharcode_chain(self):
        source = "var s = String.fromCharCode(104,116) + String.fromCharCode(112);"
        indicators = analyze_script(source)
        assert indicators.string_function_calls == 2
        assert indicators.is_obfuscated

    def test_eval_plus_decoder(self):
        indicators = analyze_script("eval(unescape('%70%61'));")
        assert indicators.dynamic_eval_calls == 1
        assert indicators.string_function_calls == 1
        assert indicators.is_obfuscated

    def test_hex_escape_mass(self):
        payload = "var p = '" + "\\x41" * 10 + "';"
        assert analyze_script(payload).is_obfuscated

    def test_high_entropy_long_string(self):
        import random
        random.seed(5)
        blob = "".join(random.choice("abcdefghijklmnopqrstuvwxyz0123456789"
                                     "ABCDEFGHIJKLMNOPQRSTUVWXYZ+/=")
                       for _ in range(120))
        indicators = analyze_script(f"var k = '{blob}';")
        assert indicators.long_string_literals == 1
        assert indicators.max_string_entropy > 4.2

    def test_single_settimeout_is_not_obfuscation(self):
        indicators = analyze_script("setTimeout(tick, 1000);")
        assert not indicators.is_obfuscated


class TestAggregation:
    def test_analyze_scripts_sums_counts(self):
        combined = analyze_scripts([
            "eval(unescape('%41'));",
            "var s = String.fromCharCode(65);",
        ])
        assert combined.dynamic_eval_calls == 1
        assert combined.string_function_calls == 2
        assert combined.token_count > 0

    def test_empty_list(self):
        combined = analyze_scripts([])
        assert combined.token_count == 0
        assert not combined.is_obfuscated
