"""Dated snapshot series: determinism, caching, from-scratch identity."""

import pytest

from repro.dns.packedzone import pack_zone
from repro.phishworld.events import build_tape, replay_into_store
from repro.phishworld.series import (
    DatedSnapshot,
    SeriesConfig,
    generate_series,
)
from repro.stages.store import ArtifactStore

SMALL = SeriesConfig(n_snapshots=4, base_events=150, events_per_snapshot=80)


def test_config_validation():
    with pytest.raises(ValueError):
        SeriesConfig(n_snapshots=0)
    with pytest.raises(ValueError):
        SeriesConfig(events_per_snapshot=0)
    with pytest.raises(ValueError):
        SeriesConfig(start_date="not-a-date")


def test_dates_are_config_arithmetic():
    config = SeriesConfig(n_snapshots=3, base_events=60,
                          events_per_snapshot=40,
                          start_date="2018-03-01", cadence_days=7)
    series = generate_series(config)
    assert [snap.date for snap in series] == \
        ["2018-03-01", "2018-03-08", "2018-03-15"]
    assert [snap.index for snap in series] == [0, 1, 2]


def test_series_is_pure_in_config():
    first = generate_series(SMALL)
    second = generate_series(SMALL)
    assert first.series_digest == second.series_digest
    assert [s.digest for s in first] == [s.digest for s in second]
    assert first.tape_digest == second.tape_digest


def test_each_snapshot_matches_from_scratch_replay():
    # snapshot k is byte-identical to packing the tape prefix behind it
    # from scratch — the §14 compaction identity, chained across dates
    series = generate_series(SMALL)
    tape = build_tape(SMALL.tape_config())
    for snap in series:
        scratch = pack_zone(replay_into_store(tape[:snap.events]))
        assert snap.zone.to_bytes() == scratch.to_bytes()


def test_warm_store_serves_every_snapshot_from_cache(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    cold = generate_series(SMALL, store=store)
    assert cold.stats.cached_snapshots == 0
    warm = generate_series(SMALL, store=store)
    assert warm.stats.cached_snapshots == len(warm)
    assert all(snap.cached for snap in warm)
    assert warm.series_digest == cold.series_digest


def test_config_change_invalidates_only_the_affected_suffix(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    generate_series(SMALL, store=store)
    # a longer series shares the whole prefix: every previously built
    # snapshot replays from cache, only the new tail is computed
    longer = SeriesConfig(n_snapshots=SMALL.n_snapshots + 1,
                          base_events=SMALL.base_events,
                          events_per_snapshot=SMALL.events_per_snapshot)
    # NOTE: a longer tape is a *different* tape (the RNG keeps drawing),
    # so nothing is shareable — this documents the contract honestly
    extended = generate_series(longer, store=store)
    assert extended.stats.cached_snapshots == 0

    # same config, different store namespace -> fresh run, same digests
    other = generate_series(SMALL, store=store, series_id="other")
    assert other.stats.cached_snapshots == 0
    assert other.series_digest == generate_series(SMALL).series_digest


def test_snapshots_advance_monotonically_in_events():
    series = generate_series(SMALL)
    events = [snap.events for snap in series]
    assert events[0] == SMALL.base_events
    assert all(b - a == SMALL.events_per_snapshot
               for a, b in zip(events, events[1:]))
    assert len(list(series.pairs())) == len(series) - 1


def test_lifecycle_shares_churn_the_series():
    # with re-registration and weaponization on, consecutive snapshots
    # must actually differ (the lifecycle study has signal to measure)
    series = generate_series(SMALL)
    digests = {snap.digest for snap in series}
    assert len(digests) == len(series)
    assert SMALL.reregister_share > 0 and SMALL.weaponize_share > 0


def test_dated_snapshot_digest_is_zone_digest():
    series = generate_series(SeriesConfig(
        n_snapshots=1, base_events=50, events_per_snapshot=10))
    snap = series[0]
    assert isinstance(snap, DatedSnapshot)
    assert snap.digest == snap.zone.content_digest
    assert len(series) == 1
