"""End-to-end pipeline integration over the shared micro world."""

from collections import Counter

import numpy as np
import pytest

from repro.analysis import measure_evasion
from repro.analysis.tables import (
    blacklist_coverage,
    brand_verification_rows,
    crawl_stats,
    ground_truth_decay,
    liveness_matrix,
    wild_detection_rows,
)
from repro.analysis.figures import (
    brand_accumulation_curve,
    liveness_series,
    phish_squat_type_histogram,
    squat_type_histogram,
    top_targeted_brands,
    verified_phish_cdf,
)
from repro.squatting.types import SquatType


class TestSquattingStage:
    def test_scan_recall_against_truth(self, pipeline_result, micro_world):
        found = {m.domain for m in pipeline_result.squat_matches}
        truth = set(micro_world.squat_truth)
        recall = len(found & truth) / len(truth)
        assert recall > 0.97

    def test_combo_dominates(self, pipeline_result):
        histogram = squat_type_histogram(pipeline_result.squat_matches)
        assert histogram["combo"] == max(histogram.values())

    def test_brand_skew_curve_monotone(self, pipeline_result):
        curve = brand_accumulation_curve(pipeline_result.squat_matches)
        assert all(a <= b for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(100.0)


class TestCrawlStage:
    def test_both_profiles_crawled(self, pipeline_result):
        snapshot = pipeline_result.crawl_snapshots[0]
        profiles = {profile for _, profile in snapshot.results}
        assert profiles == {"web", "mobile"}

    def test_crawl_stats_shape(self, pipeline_result, micro_world):
        rows = crawl_stats(pipeline_result.crawl_snapshots[0],
                           pipeline_result.squat_matches, micro_world.catalog)
        assert len(rows) == 2
        for row in rows:
            # Table 2: most live squat domains do not redirect (~87%)
            assert row.no_redirect / row.live_domains > 0.7

    def test_four_snapshots(self, pipeline_result):
        assert len(pipeline_result.crawl_snapshots) == 4


class TestTrainingStage:
    def test_all_three_models_evaluated(self, pipeline_result):
        assert set(pipeline_result.cv_reports) == {
            "naive_bayes", "knn", "random_forest"}

    def test_random_forest_is_best(self, pipeline_result):
        reports = pipeline_result.cv_reports
        # at micro scale (~220 squats, ~45 positives) AUCs jitter by a few
        # points; RF must stay competitive here — the paper-shape ordering
        # is asserted at bench scale in bench_table07
        assert reports["random_forest"].auc >= reports["naive_bayes"].auc - 0.03

    def test_table7_shape(self, pipeline_result):
        rf = pipeline_result.cv_reports["random_forest"]
        assert rf.auc > 0.9
        assert rf.false_positive_rate < 0.10
        assert rf.false_negative_rate < 0.20

    def test_ground_truth_composition(self, pipeline_result):
        sources = Counter(p.source for p in pipeline_result.ground_truth)
        assert sources["phishtank"] > 0
        assert sources["squat-benign"] > 0


class TestWildDetection:
    def test_verified_is_subset_of_flagged(self, pipeline_result):
        flagged = {f.domain for f in pipeline_result.flagged}
        verified = {v.domain for v in pipeline_result.verified}
        assert verified <= flagged

    def test_recall_against_world_truth(self, pipeline_result, micro_world):
        verified = set(pipeline_result.verified_domains())
        truth = set(micro_world.phishing_domains())
        assert len(verified & truth) / len(truth) > 0.7

    def test_verification_precision(self, pipeline_result, micro_world):
        verified = pipeline_result.verified_domains()
        true_hits = sum(1 for d in verified
                        if micro_world.label_of(d) == "phishing")
        assert true_hits / len(verified) > 0.95

    def test_wild_detection_rows(self, pipeline_result, micro_world):
        rows = wild_detection_rows(pipeline_result, len(micro_world.squat_truth))
        assert [r.population for r in rows] == ["web", "mobile", "union"]
        union = rows[2]
        assert union.confirmed <= union.classified_phishing
        assert union.confirmed == len(pipeline_result.verified)

    def test_cloaking_split_exists(self, pipeline_result):
        profiles = Counter(v.profiles for v in pipeline_result.verified)
        assert sum(1 for p in profiles if p == ("mobile",)) + \
               sum(1 for p in profiles if p == ("web",)) > 0

    def test_brand_verification_rows(self, pipeline_result):
        rows = brand_verification_rows(pipeline_result,
                                       pipeline_result.squat_matches, top_n=5)
        assert rows
        for row in rows:
            assert row.verified_web <= max(row.predicted_web, row.predicted_mobile) + 5


class TestCharacterization:
    def test_evasion_rates_squatting_higher_string(self, pipeline_result):
        squat = measure_evasion(pipeline_result.evasion_squatting, "squat")
        reported = measure_evasion(pipeline_result.evasion_reported, "reported")
        # Table 11: squatting phish string-obfuscate far more often
        assert squat.string_rate > reported.string_rate

    def test_layout_distances_are_large(self, pipeline_result):
        squat = measure_evasion(pipeline_result.evasion_squatting, "squat")
        assert squat.layout_mean > 10  # Fig 9 territory

    def test_phish_type_histogram_all_types(self, pipeline_result):
        histogram = phish_squat_type_histogram(pipeline_result.verified)
        assert histogram["combo"] == max(histogram.values())

    def test_cdf_reaches_100(self, pipeline_result):
        points = verified_phish_cdf(pipeline_result.verified)
        assert points[-1][1] == pytest.approx(100.0)

    def test_top_targeted_brands_match_seeded_head(self, pipeline_result):
        # at micro scale the seeded case studies dominate; google's 5×
        # dominance (Fig 13) is asserted at bench scale instead
        top = top_targeted_brands(pipeline_result.verified, n=5)
        assert top[0][0] in ("google", "facebook")
        assert top[0][1] + top[0][2] >= top[1][1] + top[1][2]

    def test_longevity_most_pages_survive(self, pipeline_result):
        domains = pipeline_result.verified_domains()
        series = liveness_series(pipeline_result.crawl_snapshots, domains)
        web = series["web"]
        # Fig 17: ~80% alive after a month
        assert web[-1] >= 0.6 * web[0]

    def test_blacklist_coverage_shape(self, pipeline_result, micro_world):
        rows = blacklist_coverage(micro_world.blacklists,
                                  pipeline_result.verified_domains())
        by_name = {r.service: r for r in rows}
        # Table 12: the overwhelming majority evade all blacklists
        assert by_name["Not Detected"].rate > 0.75
        assert by_name["PhishTank"].rate < 0.1

    def test_liveness_matrix_row_per_domain(self, pipeline_result):
        domains = pipeline_result.verified_domains()[:4]
        rows = liveness_matrix(pipeline_result.crawl_snapshots, domains)
        assert len(rows) == len(domains)
        assert all(len(cells) == 4 for _, cells in rows)

    def test_ground_truth_decay_table(self, micro_world):
        rows = ground_truth_decay(micro_world.phishtank, top_n=4)
        assert len(rows) == 4
        for row in rows:
            assert 0 <= row.valid_phishing <= row.reported_urls
