"""PhishTank feed simulation: skew, churn, squatting rarity."""

import numpy as np
import pytest

from repro.brands import build_paper_catalog
from repro.phishworld.phishtank import PhishTankFeed


@pytest.fixture(scope="module")
def feed():
    catalog = build_paper_catalog()
    feed = PhishTankFeed(catalog, np.random.default_rng(21), total_reports=2000)
    feed.generate()
    return feed


def test_report_count(feed):
    assert len(feed.generate()) == 2000


def test_generate_is_idempotent(feed):
    assert feed.generate() is feed.generate()


def test_brand_skew_head(feed):
    """Table 5: the top-8 brands carry the majority of reports (~59%)."""
    top8 = feed.top_brands(8)
    head_mass = sum(count for _, count in top8) / len(feed.generate())
    assert 0.45 < head_mass < 0.72
    assert top8[0][0] == "paypal"  # paypal leads in the paper


def test_churn_rate(feed):
    """~43.2% of reported URLs still phish at crawl time."""
    reports = feed.generate()
    valid = sum(1 for r in reports if r.still_phishing)
    assert 0.35 < valid / len(reports) < 0.52


def test_facebook_pages_survive_more_often(feed):
    """Table 5: facebook URLs stay valid at ~69%, paypal at ~27%."""
    grouped = feed.by_brand()
    def valid_rate(brand):
        items = grouped[brand]
        return sum(1 for r in items if r.still_phishing) / len(items)
    assert valid_rate("facebook") > valid_rate("paypal")


def test_squatting_is_rare(feed):
    """Fig 7: ~91% of reports use no squatting domain."""
    reports = feed.generate()
    squatting = sum(1 for r in reports if r.squat_type is not None)
    assert 0.04 < squatting / len(reports) < 0.15


def test_squatting_reports_are_combo_heavy(feed):
    squat_types = [r.squat_type for r in feed.generate() if r.squat_type]
    assert squat_types.count("combo") / len(squat_types) > 0.85


def test_verified_active_filter(feed):
    subset = feed.verified_active()
    assert subset
    assert all(r.verified and r.active for r in subset)


def test_urls_carry_domain_and_path(feed):
    report = feed.generate()[0]
    assert report.url.startswith("http://")
    assert report.domain in report.url
