"""URL parsing and relative-reference resolution."""

import pytest

from repro.web.urls import (
    URL,
    URLError,
    is_absolute,
    parse_url,
    remove_dot_segments,
    resolve,
)


class TestParse:
    def test_basic(self):
        url = parse_url("http://example.com/path?x=1")
        assert url.scheme == "http"
        assert url.host == "example.com"
        assert url.path == "/path"
        assert url.query == "x=1"
        assert str(url) == "http://example.com/path?x=1"

    def test_defaults(self):
        url = parse_url("https://Example.COM")
        assert url.host == "example.com"
        assert url.path == "/"
        assert url.query == ""
        assert url.port is None

    def test_port(self):
        url = parse_url("http://host:8080/a")
        assert url.port == 8080
        assert url.origin == "http://host:8080"

    @pytest.mark.parametrize("bad", [
        "not-a-url", "ftp://x.com/", "http://", "http://host:notaport/",
        "http://host:70000/",
    ])
    def test_rejects(self, bad):
        with pytest.raises(URLError):
            parse_url(bad)


class TestDotSegments:
    @pytest.mark.parametrize("path,expected", [
        ("/a/b/c", "/a/b/c"),
        ("/a/./b", "/a/b"),
        ("/a/../b", "/b"),
        ("/a/b/../../c", "/c"),
        ("/../a", "/a"),
        ("/a/..", "/"),
        ("/a/.", "/a/"),
    ])
    def test_removal(self, path, expected):
        assert remove_dot_segments(path) == expected


class TestResolve:
    BASE = "http://site.com/dir/page.html?q=1"

    @pytest.mark.parametrize("reference,expected", [
        ("http://other.com/x", "http://other.com/x"),
        ("//cdn.com/lib.js", "http://cdn.com/lib.js"),
        ("/rooted", "http://site.com/rooted"),
        ("sibling.html", "http://site.com/dir/sibling.html"),
        ("../up.html", "http://site.com/up.html"),
        ("?page=2", "http://site.com/dir/page.html?page=2"),
        ("", "http://site.com/dir/page.html?q=1"),
        ("/a/b?x=y", "http://site.com/a/b?x=y"),
    ])
    def test_cases(self, reference, expected):
        assert resolve(self.BASE, reference) == expected

    def test_is_absolute(self):
        assert is_absolute("http://x.com/")
        assert is_absolute("//x.com/")
        assert not is_absolute("/path")
        assert not is_absolute("page.html")


class TestBrowserIntegration:
    def test_relative_redirect_followed(self):
        from repro.web.browser import Browser
        from repro.web.html import document, el
        from repro.web.http import WEB_UA
        from repro.web.server import HostedSite, SiteBehavior, WebHost

        host = WebHost()
        host.register(HostedSite(domain="a.com", behavior=SiteBehavior.REDIRECT,
                                 redirect_to="//b.com/landing"))
        page = document("B", el("p", "landed"))
        host.register(HostedSite(domain="b.com", behavior=SiteBehavior.CONTENT,
                                 provider=lambda ua, snap: page))
        capture = Browser(host, WEB_UA).visit("http://a.com/")
        assert capture is not None
        assert capture.final_domain == "b.com"

    def test_unresolvable_redirect_is_dead_end(self):
        from repro.web.browser import Browser
        from repro.web.http import WEB_UA
        from repro.web.server import HostedSite, SiteBehavior, WebHost

        host = WebHost()
        host.register(HostedSite(domain="a.com", behavior=SiteBehavior.REDIRECT,
                                 redirect_to="ftp://b.com/x"))
        assert Browser(host, WEB_UA).visit("http://a.com/") is None
