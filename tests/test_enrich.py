"""Bulk enrichment resolver: determinism, resilience, degradation.

The contract under test (DESIGN.md §12): the event-loop resolver's
finalized table digests byte-identical to the serial no-fault oracle at
every concurrency level, hedging setting, and fault seed; faults change
only timing and accounting.  Bounded retry ladders are the one sanctioned
deviation — they degrade rows to typed miss reasons instead of raising.
"""

from __future__ import annotations

import pytest

from repro.dns.packedzone import PackedZoneBuilder, attach_enrichment
from repro.enrich import (
    STATUS_BREAKER_OPEN,
    STATUS_NXDOMAIN,
    STATUS_OK,
    STATUS_RETRIES_EXHAUSTED,
    EnrichResolver,
    EnrichmentTable,
    NegativeCache,
    default_backends,
    enrich_serial,
)
from repro.analysis.figures import (
    geolocation_histogram,
    geolocation_histogram_from_table,
    registration_year_histogram,
    registration_year_histogram_from_table,
    registrar_histogram_from_table,
)
from repro.faults.clock import SimClock
from repro.faults.errors import FaultError
from repro.faults.guard import GuardedCall
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.resilience import CircuitBreaker, CrawlHealth, RetryPolicy


@pytest.fixture(scope="module")
def backends(micro_world):
    return default_backends(micro_world.zone, micro_world.whois,
                            micro_world.geoip)


@pytest.fixture(scope="module")
def domains(micro_world):
    """A mixed sample: real zone names plus guaranteed NXDOMAINs."""
    present = sorted(micro_world.zone.registered_domains())[:150]
    absent = [f"definitely-not-registered-{i}.test" for i in range(12)]
    return present + absent


@pytest.fixture(scope="module")
def oracle(domains, backends):
    """The serial no-fault reference table."""
    table, _health = enrich_serial(domains, backends)
    return table


# ----------------------------------------------------------------------
# the determinism contract
# ----------------------------------------------------------------------

@pytest.mark.parametrize("rate", [0.0, 0.05, 0.2])
@pytest.mark.parametrize("concurrency", [1, 8, 64])
def test_resolver_matches_oracle_across_faults_and_concurrency(
        domains, backends, oracle, rate, concurrency):
    plan = FaultPlan.uniform(rate, seed=1803) if rate else None
    resolver = EnrichResolver(backends, plan, concurrency=concurrency)
    table = resolver.resolve(domains)
    assert table.digest() == oracle.digest()
    assert resolver.stats.tasks == len(table) * len(backends)


def test_resolver_matches_oracle_without_hedging(domains, backends, oracle):
    plan = FaultPlan.uniform(0.2, seed=99)
    resolver = EnrichResolver(backends, plan, concurrency=8, hedging=False)
    assert resolver.resolve(domains).digest() == oracle.digest()


def test_serial_fault_sweep_matches_oracle(domains, backends, oracle):
    plan = FaultPlan.uniform(0.2, seed=4)
    table, health = enrich_serial(domains, backends, plan)
    assert table.digest() == oracle.digest()
    assert health.retries > 0            # weather happened, values held


def test_identical_runs_have_identical_stats(domains, backends):
    plan = FaultPlan.uniform(0.1, seed=7)
    first = EnrichResolver(backends, plan, concurrency=8)
    second = EnrichResolver(backends, plan, concurrency=8)
    first.resolve(domains)
    second.resolve(domains)
    assert first.stats.to_dict() == second.stats.to_dict()


# ----------------------------------------------------------------------
# fast-path screening equivalences
# ----------------------------------------------------------------------

@pytest.mark.parametrize("plan", [
    FaultPlan(),
    FaultPlan.uniform(0.05, seed=1803),
    FaultPlan.uniform(0.3, seed=9),
    FaultPlan(slow_response_rate=0.1),
    FaultPlan(dns_servfail_rate=0.2, conn_reset_rate=0.1),
    FaultPlan(backend_flap_rate=0.5),
], ids=["none", "uniform-5", "uniform-30", "slow-only", "abort-only", "flap"])
def test_bulk_screen_matches_scalar_screen(domains, backends, plan):
    """`backend_dirty_many` must reproduce per-call `backend_dirty`
    decisions exactly — it is the same draw, hashed incrementally."""
    injector = FaultInjector(plan)
    for backend in backends:
        hosts = [backend.host(domain) for domain in domains]
        bulk = injector.backend_dirty_many(backend.name, hosts, domains)
        scalar = [injector.backend_dirty(backend.name, host, domain)
                  for host, domain in zip(hosts, domains)]
        assert bulk == scalar


def test_bulk_backend_paths_match_scalar_paths(domains, backends):
    """`host_for_tld` and `lookup_many` are pure restatements of
    `host`/`lookup` — the fast path must not change a single value."""
    from repro.enrich.backends import _tld_of
    for backend in backends:
        assert [backend.host_for_tld(tld) for tld in
                (_tld_of(domain) for domain in domains)] \
            == [backend.host(domain) for domain in domains]
        assert backend.lookup_many(domains) \
            == [backend.lookup(domain) for domain in domains]


# ----------------------------------------------------------------------
# hedging
# ----------------------------------------------------------------------

def test_hedging_fires_and_cuts_makespan_without_changing_table(
        domains, backends, oracle):
    plan = FaultPlan.uniform(0.2, seed=17)
    hedged = EnrichResolver(backends, plan, concurrency=8, hedging=True)
    plain = EnrichResolver(backends, plan, concurrency=8, hedging=False)
    hedged_table = hedged.resolve(domains)
    plain_table = plain.resolve(domains)
    assert hedged_table.digest() == oracle.digest()
    assert plain_table.digest() == oracle.digest()
    assert hedged.stats.hedges_fired > 0
    assert hedged.stats.hedge_wins <= hedged.stats.hedges_fired
    assert hedged.stats.sim_seconds < plain.stats.sim_seconds


# ----------------------------------------------------------------------
# negative cache
# ----------------------------------------------------------------------

def test_negative_cache_unit_semantics():
    cache = NegativeCache(ttl=10.0)
    cache.put("zone", "gone.test", now=0.0)
    assert cache.hit("zone", "gone.test", now=5.0)
    assert not cache.hit("whois", "gone.test", now=5.0)   # scoped
    assert not cache.hit("zone", "gone.test", now=10.0)   # expired
    assert not cache.hit("zone", "gone.test", now=5.0)    # expiry evicted


def test_negcache_short_circuits_sibling_backends(domains, backends, oracle):
    # an (effectively zero) flap rate disables the fast path, so every
    # task runs through the event loop: the A backend's NXDOMAIN for each
    # absent name is then served from the cache to MX and GeoIP
    plan = FaultPlan(backend_flap_rate=1e-12)
    resolver = EnrichResolver(backends, plan, concurrency=8)
    table = resolver.resolve(domains)
    assert table.digest() == oracle.digest()
    absent = sum(1 for d in table.domains
                 if table.status["a"][table.row_of(d)] == STATUS_NXDOMAIN)
    assert absent >= 12
    assert resolver.stats.negcache_stores >= absent
    assert resolver.stats.negcache_hits >= 2 * absent  # mx + geo shortcuts


def test_fast_path_stores_negatives_too(domains, backends):
    resolver = EnrichResolver(backends, None, concurrency=8)
    resolver.resolve(domains)
    assert resolver.stats.event_loop_tasks == 0
    assert resolver.stats.negcache_stores > 0


# ----------------------------------------------------------------------
# backend flapping
# ----------------------------------------------------------------------

def test_flapping_backends_are_tallied_and_harmless(
        domains, backends, oracle):
    plan = FaultPlan(backend_flap_rate=0.3, backend_flap_period=60.0)
    resolver = EnrichResolver(backends, plan, concurrency=8)
    table = resolver.resolve(domains)
    assert table.digest() == oracle.digest()
    assert resolver.stats.injected.get("backend_flap", 0) > 0


# ----------------------------------------------------------------------
# graceful degradation (bounded ladders)
# ----------------------------------------------------------------------

def test_bounded_attempts_degrade_to_typed_miss_reasons(domains, backends):
    plan = FaultPlan.uniform(0.6, seed=23)
    resolver = EnrichResolver(backends, plan, concurrency=8,
                              max_attempts=2,
                              breaker_failure_threshold=3)
    table = resolver.resolve(domains)   # must not raise at 60% weather
    assert resolver.stats.partial_rows > 0
    reasons = table.miss_reason_counts()
    degraded = {reason
                for by_backend in reasons.values()
                for reason in by_backend}
    assert {"retries_exhausted", "breaker_open"} & degraded
    # degraded rows survive with their typed reason, never as bogus values
    for d in table.domains:
        row = table.row_of(d)
        decoded = table.decoded_row(row)
        if int(table.status["a"][row]) in (STATUS_RETRIES_EXHAUSTED,
                                           STATUS_BREAKER_OPEN):
            assert decoded["a_ip"] is None


def test_unbounded_resolver_never_produces_partial_rows(domains, backends):
    plan = FaultPlan.uniform(0.4, seed=31)
    resolver = EnrichResolver(backends, plan, concurrency=16)
    table = resolver.resolve(domains)
    assert resolver.stats.partial_rows == 0
    assert resolver.stats.breaker_deferrals >= 0
    for backend in ("a", "mx", "whois", "geo"):
        assert not ((table.status[backend] == STATUS_RETRIES_EXHAUSTED)
                    | (table.status[backend] == STATUS_BREAKER_OPEN)).any()


# ----------------------------------------------------------------------
# PZON enrichment columns
# ----------------------------------------------------------------------

def test_packed_zone_attach_roundtrip(micro_world, backends, oracle):
    builder = PackedZoneBuilder()
    for record in micro_world.zone:
        builder.add_name(record.name, ip=record.ip)
    packed = builder.build()
    assert not packed.has_enrichment

    enriched = attach_enrichment(packed, oracle)
    enriched.verify()
    assert enriched.has_enrichment
    assert len(enriched) == len(packed)

    has = enriched.enrichment_column("has")
    status_a = enriched.enrichment_column("status_a")
    countries = enriched.enrichment_meta["countries"]
    regs = enriched._regs()
    for domain in oracle.domains:
        row = oracle.row_of(domain)
        idx = regs.get(domain)
        if idx is None:          # absent names have no zone row to carry
            continue
        assert has[idx] == 1
        assert int(status_a[idx]) == int(oracle.status["a"][row])
        cid = int(enriched.enrichment_column("country")[idx])
        assert (countries[cid] or None) == oracle.country_of_row(row)
    # re-attaching is byte-idempotent
    again = attach_enrichment(enriched, oracle)
    assert again.to_bytes() == enriched.to_bytes()


# ----------------------------------------------------------------------
# figure series from the table
# ----------------------------------------------------------------------

def test_table_histograms_equal_registry_walks(micro_world, oracle):
    domains = oracle.domains
    records = [micro_world.zone.get(d) for d in domains]
    ips = [r.ip if r is not None else "" for r in records]
    assert geolocation_histogram_from_table(oracle) == \
        geolocation_histogram(micro_world.geoip, ips)
    assert registration_year_histogram_from_table(oracle) == \
        registration_year_histogram(micro_world.whois, domains)
    assert registrar_histogram_from_table(oracle) == \
        micro_world.whois.registrar_histogram(domains)
    # a sub-selection selects the matching rows
    subset = domains[:40]
    sub_records = [micro_world.zone.get(d) for d in subset]
    sub_ips = [r.ip if r is not None else "" for r in sub_records]
    assert geolocation_histogram_from_table(oracle, subset) == \
        geolocation_histogram(micro_world.geoip, sub_ips)


# ----------------------------------------------------------------------
# the table itself
# ----------------------------------------------------------------------

def test_table_dedupes_and_lowercases():
    table = EnrichmentTable(["A.com", "a.COM", "b.org"])
    assert table.domains == ["a.com", "b.org"]
    assert table.row_of("A.CoM") == 0


def test_table_digest_is_value_level():
    first = EnrichmentTable(["x.com", "y.com"])
    second = EnrichmentTable(["x.com", "y.com"])
    # intern in opposite arrival orders; decoded values agree
    first.set_result("geo", "x.com", "US", STATUS_OK)
    first.set_result("geo", "y.com", "DE", STATUS_OK)
    second.set_result("geo", "y.com", "DE", STATUS_OK)
    second.set_result("geo", "x.com", "US", STATUS_OK)
    assert first.finalize().digest() == second.finalize().digest()


def test_finalized_table_refuses_writes():
    table = EnrichmentTable(["x.com"]).finalize()
    with pytest.raises(RuntimeError, match="finalized"):
        table.set_value("a", 0, 1)


# ----------------------------------------------------------------------
# GuardedCall (the shared crawler/resolver wiring)
# ----------------------------------------------------------------------

def _failing_then_ok(failures: int):
    def fn(attempt: int):
        if attempt < failures:
            raise FaultError("timeout", "host")
        return f"ok@{attempt}"
    return fn


def test_guarded_call_retries_until_success():
    clock = SimClock()
    guard = GuardedCall(RetryPolicy(), clock, max_retries=None)
    outcome = guard.run("k", _failing_then_ok(3),
                        CircuitBreaker(), CrawlHealth())
    assert outcome.ok and outcome.value == "ok@3"
    assert outcome.retries == 3
    assert clock.now() > 0.0            # backoff was charged


def test_guarded_call_bounded_exhaustion():
    health = CrawlHealth()
    guard = GuardedCall(RetryPolicy(), SimClock(), max_retries=1)
    outcome = guard.run("k", _failing_then_ok(5), CircuitBreaker(), health)
    assert not outcome.ok
    assert outcome.last_fault == "timeout"
    assert health.attempts == 2


def test_guarded_call_waits_out_open_breaker():
    clock = SimClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=50.0)
    breaker.record_failure(clock.now())         # trip it at t=0
    health = CrawlHealth()
    guard = GuardedCall(RetryPolicy(), clock, max_retries=None,
                        wait_for_breaker=True)
    outcome = guard.run("k", _failing_then_ok(0), breaker, health)
    assert outcome.ok
    assert health.breaker_skips == 1
    assert clock.now() >= 50.0          # slept to the half-open instant
    assert breaker.state == CircuitBreaker.CLOSED


def test_guarded_call_ladder_cap_freezes_backoff():
    policy = RetryPolicy(base_delay=1.0, max_delay=10_000.0, jitter=0.0)
    capped = GuardedCall(policy, SimClock(), max_retries=None, ladder_cap=2)
    free = GuardedCall(policy, SimClock(), max_retries=None)
    capped.run("k", _failing_then_ok(6), CircuitBreaker(10), CrawlHealth())
    free.run("k", _failing_then_ok(6), CircuitBreaker(10), CrawlHealth())
    assert capped.clock.now() < free.clock.now()
