"""Additional property-based suites: squatting orthogonality, URL algebra,
vocabulary, and OCR pipeline invariants."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.brands import Brand
from repro.nlp.tokenizer import tokenize
from repro.nlp.vocab import Vocabulary
from repro.ocr.spellcheck import SpellChecker
from repro.squatting.generator import SquattingGenerator
from repro.squatting.types import SquatType
from repro.web.urls import URLError, parse_url, remove_dot_segments, resolve

labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=4, max_size=10)
hosts = labels.map(lambda s: f"{s}.com")
paths = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=6),
    min_size=0, max_size=4,
).map(lambda segments: "/" + "/".join(segments))


# ----------------------------------------------------------------------
# squat orthogonality: one candidate, one type
# ----------------------------------------------------------------------

@given(labels)
@settings(max_examples=30, deadline=None)
def test_candidate_pools_are_disjoint(label):
    generator = SquattingGenerator()
    brand = Brand(name=label, domain=f"{label}.com")
    candidates = generator.candidates(brand)
    pools = [candidates.labels[t]
             for t in (SquatType.HOMOGRAPH, SquatType.BITS, SquatType.TYPO)]
    for i in range(len(pools)):
        for j in range(i + 1, len(pools)):
            assert not (pools[i] & pools[j])
    for pool in pools:
        assert label not in pool


@given(labels)
@settings(max_examples=30, deadline=None)
def test_wrongtld_candidates_preserve_label(label):
    generator = SquattingGenerator()
    brand = Brand(name=label, domain=f"{label}.com")
    for domain in generator.candidates(brand).domains[SquatType.WRONG_TLD]:
        assert domain.split(".")[0] == label
        assert domain != brand.domain


# ----------------------------------------------------------------------
# URL algebra
# ----------------------------------------------------------------------

@given(hosts, paths)
@settings(max_examples=150)
def test_parse_str_roundtrip(host, path):
    raw = f"http://{host}{path or '/'}"
    assert str(parse_url(raw)) == raw


@given(hosts, paths, paths)
@settings(max_examples=150)
def test_resolved_urls_are_absolute(host, base_path, reference):
    base = f"http://{host}{base_path or '/'}"
    resolved = resolve(base, reference.lstrip("/") or "x")
    parsed = parse_url(resolved)    # must not raise
    assert parsed.host == host


@given(paths)
@settings(max_examples=150)
def test_dot_segment_removal_is_idempotent(path):
    once = remove_dot_segments(path or "/")
    assert remove_dot_segments(once) == once
    assert ".." not in once.split("/")


# ----------------------------------------------------------------------
# vocabulary / tokenizer
# ----------------------------------------------------------------------

@given(st.lists(labels, min_size=1, max_size=30))
@settings(max_examples=100)
def test_vocabulary_indices_are_dense_and_stable(words):
    vocab = Vocabulary(words)
    indices = sorted(vocab.index(word) for word in set(words))
    assert indices == list(range(len(set(words))))


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz -", max_size=60))
@settings(max_examples=150)
def test_tokenize_output_is_normalized(text):
    for token in tokenize(text):
        assert token == token.lower()
        assert len(token) >= 2
        assert " " not in token


# ----------------------------------------------------------------------
# spell checker
# ----------------------------------------------------------------------

@given(labels)
@settings(max_examples=100)
def test_correcting_a_dictionary_word_is_identity(word):
    checker = SpellChecker(lexicon=[word])
    assert checker.correct_word(word) == word


@given(labels.filter(lambda s: len(s) >= 5))
@settings(max_examples=100)
def test_single_deletion_is_repaired(word):
    checker = SpellChecker(lexicon=[word])
    mutated = word[:2] + word[3:]
    corrected = checker.correct_word(mutated)
    # either repaired to the lexicon word, or the mutation collided with
    # another valid short form — never something new
    assert corrected in (word, mutated)
