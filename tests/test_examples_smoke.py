"""Smoke tests: the runnable examples stay runnable.

The fast examples run in-process on every test pass; the long ones (full
pipeline runs) are marked slow and exercised by `pytest -m slow`.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 6        # ≥3 required; we ship more


def test_evasion_study_runs(capsys):
    run_example("evasion_study.py")
    out = capsys.readouterr().out
    assert "OCR on the screenshot sees brand name: True" in out


def test_dns_snapshot_scan_runs(capsys):
    run_example("dns_snapshot_scan.py")
    out = capsys.readouterr().out
    assert "squatting domains by type" in out


def test_sector_scan_runs(capsys):
    run_example("sector_scan.py")
    out = capsys.readouterr().out
    assert "sector squats found" in out
    assert "irs" in out


def test_takedown_campaign_runs(capsys):
    run_example("takedown_campaign.py")
    out = capsys.readouterr().out
    assert "reporting campaign outcome" in out


@pytest.mark.slow
def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "verified domains" in out


@pytest.mark.slow
def test_brand_monitoring_runs(capsys):
    run_example("brand_monitoring.py")
    out = capsys.readouterr().out
    assert "crowd review" in out


@pytest.mark.slow
def test_reproduce_all_runs(tmp_path, capsys):
    run_example("reproduce_all.py",
                ["--scale", "tiny", "--out", str(tmp_path / "r.json")])
    assert (tmp_path / "r.json").exists()
