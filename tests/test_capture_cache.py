"""Capture-cache correctness: cloaked sites never share entries across
device profiles, disabled-cache runs byte-match cached runs, counters
(including bypass accounting) stay honest, and the spell memo never
changes a correction."""

import numpy as np
import pytest

from repro.core import PipelineConfig, SquatPhi
from repro.perf import CacheStats, CaptureCache
from repro.perf.cache import content_digest
from repro.phishworld.world import WorldConfig, build_world
from repro.ocr.spellcheck import SpellChecker
from repro.web.browser import Browser
from repro.web.html import el
from repro.web.http import MOBILE_UA, WEB_UA
from repro.web.server import HostedSite, SiteBehavior, WebHost


def _cloaked_host():
    """One site serving a phish to web UAs and a decoy to mobile UAs."""
    host = WebHost()

    def provider(user_agent, snapshot):
        if user_agent.is_mobile:
            return el("html", el("body", el("p", "nothing to see here")))
        return el("html", el("body",
                             el("form", el("input", type="password"))))

    host.register(HostedSite(domain="cloaked.example", behavior=SiteBehavior.CONTENT,
                             provider=provider))
    return host


class TestCloakingIsolation:
    def test_profiles_never_share_entries(self):
        host = _cloaked_host()
        cache = CaptureCache()
        web = Browser(host, WEB_UA, capture_cache=cache)
        mobile = Browser(host, MOBILE_UA, capture_cache=cache)

        web_capture = web.visit("http://cloaked.example/")
        mobile_capture = mobile.visit("http://cloaked.example/")
        assert web_capture.html != mobile_capture.html

        keys = cache.render_keys()
        assert len(keys) == 2
        # distinct served bodies AND distinct profiles: even a non-cloaked
        # site could never alias, because the profile is part of the key
        assert len({key[0] for key in keys}) == 2
        assert {key[1] for key in keys} == {WEB_UA.name, MOBILE_UA.name}

    def test_repeat_visit_hits_within_profile_only(self):
        host = _cloaked_host()
        cache = CaptureCache()
        web = Browser(host, WEB_UA, capture_cache=cache)
        mobile = Browser(host, MOBILE_UA, capture_cache=cache)
        first = web.visit("http://cloaked.example/")
        again = web.visit("http://cloaked.example/")
        mobile.visit("http://cloaked.example/")
        assert cache.stats.render_hits == 1
        assert cache.stats.render_misses == 2
        assert again.html == first.html
        assert np.array_equal(again.screenshot.pixels, first.screenshot.pixels)

    def test_same_body_same_profile_different_snapshot_isolated(self):
        assert (CaptureCache.render_key("<html/>", "web", 0)
                != CaptureCache.render_key("<html/>", "web", 1))


class TestDisabledCacheByteMatch:
    @pytest.fixture(scope="class")
    def pair(self):
        def run(enabled):
            world = build_world(WorldConfig(
                seed=1803, n_organic_domains=100, n_squat_domains=100,
                n_phish_domains=8, phishtank_reports=40))
            pipeline = SquatPhi(world, PipelineConfig(
                cv_folds=3, rf_trees=8, capture_cache=enabled))
            return pipeline, pipeline.run(follow_up_snapshots=False)
        return run(True), run(False)

    def test_captures_byte_identical(self, pair):
        (_, cached), (_, uncached) = pair
        snap_a, snap_b = cached.crawl_snapshots[0], uncached.crawl_snapshots[0]
        assert snap_a.digest() == snap_b.digest()
        assert set(snap_a.results) == set(snap_b.results)
        for key, result_a in snap_a.results.items():
            result_b = snap_b.results[key]
            if result_a.capture is None:
                assert result_b.capture is None
                continue
            assert result_a.capture.html == result_b.capture.html
            assert np.array_equal(result_a.capture.screenshot.pixels,
                                  result_b.capture.screenshot.pixels)

    def test_features_identical(self, pair):
        (pipeline_a, cached), (pipeline_b, uncached) = pair
        capture = cached.crawl_snapshots[0].captures("web")[0].capture
        features_a = pipeline_a.extractor.extract_capture(capture)
        features_b = pipeline_b.extractor.extract_capture(capture)
        assert features_a.all_tokens() == features_b.all_tokens()
        assert features_a.form_count == features_b.form_count
        assert features_a.password_input_count == features_b.password_input_count

    def test_verified_domains_identical(self, pair):
        (_, cached), (_, uncached) = pair
        assert cached.verified_domains() == uncached.verified_domains()

    def test_counters(self, pair):
        (pipeline_a, _), (pipeline_b, _) = pair
        on, off = pipeline_a.perf.cache, pipeline_b.perf.cache
        assert on.any_hits
        assert on.render_hit_rate > 0
        assert on.render_bypasses == on.feature_bypasses == 0
        assert not off.any_hits
        assert off.render_misses == off.feature_misses == 0
        # the bypassed run still reports how much traffic the cache would
        # have seen
        assert off.render_bypasses == on.render_hits + on.render_misses
        assert off.feature_bypasses == on.feature_hits + on.feature_misses


class TestSingleFlight:
    def test_concurrent_duplicates_split_deterministically(self):
        """N threads rendering the same body: exactly 1 miss, N-1 hits."""
        import threading

        host = _cloaked_host()
        cache = CaptureCache()
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        captures = [None] * n_threads

        def visit(slot):
            browser = Browser(host, WEB_UA, capture_cache=cache)
            barrier.wait()
            captures[slot] = browser.visit("http://cloaked.example/")

        threads = [threading.Thread(target=visit, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert cache.stats.render_misses == 1
        assert cache.stats.render_hits == n_threads - 1
        assert len({c.html for c in captures}) == 1


class TestFeatureCacheCopies:
    def test_hit_returns_independent_copy(self):
        world = build_world(WorldConfig(
            seed=1803, n_organic_domains=40, n_squat_domains=40,
            n_phish_domains=4, phishtank_reports=20))
        pipeline = SquatPhi(world, PipelineConfig(cv_folds=3, rf_trees=8))
        capture = Browser(world.host, WEB_UA,
                          capture_cache=pipeline.capture_cache).visit(
            f"http://{next(iter(world.catalog)).domain}/")
        first = pipeline.extractor.extract_capture(capture)
        first.lexical_tokens.append("mutated-by-caller")
        second = pipeline.extractor.extract_capture(capture)
        assert "mutated-by-caller" not in second.lexical_tokens


class TestSpellMemo:
    def test_memo_never_changes_corrections(self):
        words = ["passwod", "acount", "xylophone", "lgin", "secure", "p4y"]
        plain = SpellChecker()
        memoized = SpellChecker()
        memoized.enable_memo(CacheStats())
        for word in words * 3:
            assert memoized.correct_word(word) == plain.correct_word(word)

    def test_memo_counts_hits(self):
        stats = CacheStats()
        checker = SpellChecker()
        checker.enable_memo(stats)
        checker.correct_word("passwod")
        checker.correct_word("passwod")
        assert stats.spell_misses == 1
        assert stats.spell_hits == 1

    def test_memo_invalidated_on_new_word(self):
        checker = SpellChecker()
        checker.enable_memo()
        assert checker.correct_word("zzyzzx") == "zzyzzx"  # no correction
        checker.add_word("zzyzz")
        assert checker.correct_word("zzyzzx") == "zzyzz"


class TestContentDigest:
    def test_distinct_bodies_distinct_digests(self):
        assert content_digest("<a/>") != content_digest("<b/>")

    def test_stable(self):
        assert content_digest("page") == content_digest("page")
