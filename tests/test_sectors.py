"""Sector catalogs (the §7 measurement extension)."""

import pytest

from repro.brands import build_paper_catalog
from repro.brands.sectors import SECTORS, extend_with_sectors, sector_catalog
from repro.squatting.detector import SquattingDetector
from repro.squatting.types import SquatType


class TestSectorCatalog:
    def test_all_sectors_by_default(self):
        catalog = sector_catalog()
        categories = {brand.category for brand in catalog}
        assert categories == set(SECTORS)

    def test_subset_selection(self):
        catalog = sector_catalog(["government"])
        assert all(b.category == "government" for b in catalog)
        assert "irs" in catalog

    def test_unknown_sector_rejected(self):
        with pytest.raises(ValueError):
            sector_catalog(["casinos"])

    def test_sources_marked(self):
        catalog = sector_catalog(["university"])
        assert all(b.sources == ("sector",) for b in catalog)


class TestExtend:
    def test_merges_without_losing_base(self):
        base = build_paper_catalog()
        merged = extend_with_sectors(base, ["government", "hospital"])
        assert len(merged) > len(base)
        assert "google" in merged          # base preserved
        assert "irs" in merged             # sector added

    def test_base_catalog_is_not_mutated(self):
        base = build_paper_catalog()
        size_before = len(base)
        extend_with_sectors(base)
        assert len(base) == size_before


class TestSectorDetection:
    @pytest.fixture(scope="class")
    def detector(self):
        return SquattingDetector(sector_catalog())

    @pytest.mark.parametrize("domain,brand,squat_type", [
        ("irs-refund.com", "irs", SquatType.COMBO),
        ("1rs.gov", "irs", SquatType.HOMOGRAPH),
        ("mayoclinic-login.org", "mayoclinic", SquatType.COMBO),
        ("stanfnrd.edu", "stanford", SquatType.BITS),  # o→n is one bit flip
        ("nhs-appointments.uk", "nhs", SquatType.COMBO),
        ("armyy.mil", "army", SquatType.TYPO),
        ("tricare.com", "tricare", SquatType.WRONG_TLD),
    ])
    def test_sector_squats_detected(self, detector, domain, brand, squat_type):
        match = detector.classify_domain(domain)
        assert match is not None, domain
        assert match.brand == brand
        assert match.squat_type == squat_type

    def test_own_domains_clean(self, detector):
        for domain in ("irs.gov", "mit.edu", "nhs.uk"):
            assert detector.classify_domain(domain) is None
