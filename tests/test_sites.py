"""Benign site templates: the content populations of the synthetic web."""

import numpy as np
import pytest

from repro.analysis.evasion import string_obfuscated
from repro.brands import Brand
from repro.phishworld.sites import (
    brand_original_page,
    fan_forum_page,
    for_sale_page,
    newsletter_page,
    organic_page,
    parked_page,
    plugin_shop_page,
    portal_login_page,
    survey_page,
)
from repro.web.html import forms, parse_html, text_content


@pytest.fixture()
def rng():
    return np.random.default_rng(17)


@pytest.fixture(scope="module")
def paypal():
    return Brand(name="paypal", domain="paypal.com", sensitivity="payment")


@pytest.fixture(scope="module")
def infobrand():
    return Brand(name="vice", domain="vice.com", sensitivity="info")


class TestBrandOriginal:
    def test_login_brand_has_password_form(self, paypal):
        page = brand_original_page(paypal)
        tree = parse_html(page.to_html())
        assert forms(tree)
        inputs = tree.find_all("input")
        assert any(i.get("type") == "password" for i in inputs)
        assert "paypal" in text_content(tree).lower()

    def test_info_brand_has_no_form(self, infobrand):
        page = brand_original_page(infobrand)
        assert not forms(parse_html(page.to_html()))


class TestBenignPopulations:
    def test_parked_page_has_no_form(self):
        page = parked_page("example-parked.com")
        assert not forms(parse_html(page.to_html()))

    def test_for_sale_page_has_offer_form_but_no_password(self):
        page = for_sale_page("premium.com")
        tree = parse_html(page.to_html())
        assert forms(tree)
        assert all(i.get("type") != "password" for i in tree.find_all("input"))

    def test_organic_page_is_deterministic_per_rng(self):
        a = organic_page("site.com", np.random.default_rng(3)).to_html()
        b = organic_page("site.com", np.random.default_rng(3)).to_html()
        assert a == b

    def test_newsletter_mentions_brand_with_form(self, paypal, rng):
        page = newsletter_page("paypal-fans.net", paypal, rng)
        html = page.to_html()
        assert not string_obfuscated(html, "paypal")
        assert forms(parse_html(html))

    def test_survey_page_has_text_boxes(self, paypal, rng):
        page = survey_page("paypal-survey.net", paypal, rng)
        tree = parse_html(page.to_html())
        assert len(tree.find_all("input")) >= 2

    def test_plugin_shop_mentions_payment_brand(self, paypal, rng):
        page = plugin_shop_page("tinyshop.com", paypal, rng)
        assert "paypal" in text_content(parse_html(page.to_html())).lower()

    def test_fan_forum_is_the_hard_case(self, paypal, rng):
        """Brand keywords + password form, legitimately benign."""
        page = fan_forum_page("paypal-fans.org", paypal, rng)
        tree = parse_html(page.to_html())
        assert "paypal" in text_content(tree).lower()
        assert any(i.get("type") == "password" for i in tree.find_all("input"))
        assert "unofficial" in text_content(tree).lower()

    def test_portal_login_has_credentials_but_no_brand(self, rng):
        page = portal_login_page("random-portal.net", rng)
        tree = parse_html(page.to_html())
        assert any(i.get("type") == "password" for i in tree.find_all("input"))

    def test_templates_handle_missing_brand(self, rng):
        for template in (newsletter_page, survey_page, plugin_shop_page,
                         fan_forum_page):
            page = template("nobrand.net", None, rng)
            assert page.to_html()
