"""Determinism guarantees: same seed, same universe, same results.

The README promises bit-identical worlds per WorldConfig; these tests pin
the guarantee at every level that could silently regress (e.g. an
accidental `hash()` or unseeded RNG).
"""

import numpy as np
import pytest

from repro.core import PipelineConfig, SquatPhi
from repro.phishworld.world import WorldConfig, build_world
from repro.squatting.detector import SquattingDetector
from repro.stages import ArtifactStore

SMALL = WorldConfig(seed=99, n_organic_domains=60, n_squat_domains=80,
                    n_phish_domains=8, phishtank_reports=40)


@pytest.fixture(scope="module")
def twin_worlds():
    return build_world(SMALL), build_world(SMALL)


class TestWorldDeterminism:
    def test_zone_identical(self, twin_worlds):
        a, b = twin_worlds
        assert sorted((r.name, r.ip) for r in a.zone) == sorted(
            (r.name, r.ip) for r in b.zone)

    def test_phishing_plan_identical(self, twin_worlds):
        a, b = twin_worlds
        assert [(r.domain, r.brand, r.squat_type, r.theme,
                 r.evasion.cloaking, r.lifetime_snapshots)
                for r in a.phishing_sites] == [
                (r.domain, r.brand, r.squat_type, r.theme,
                 r.evasion.cloaking, r.lifetime_snapshots)
                for r in b.phishing_sites]

    def test_served_pages_identical(self, twin_worlds):
        from repro.web.browser import Browser
        from repro.web.http import WEB_UA

        a, b = twin_worlds
        for domain in a.phishing_domains()[:5]:
            capture_a = Browser(a.host, WEB_UA).visit(f"http://{domain}/")
            capture_b = Browser(b.host, WEB_UA).visit(f"http://{domain}/")
            if capture_a is None:
                assert capture_b is None
                continue
            assert capture_a.html == capture_b.html
            assert np.array_equal(capture_a.screenshot.pixels,
                                  capture_b.screenshot.pixels)

    def test_whois_and_geoip_identical(self, twin_worlds):
        a, b = twin_worlds
        domains = a.phishing_domains()
        assert a.whois.year_histogram(domains) == b.whois.year_histogram(domains)
        ips_a = [r.ip for r in a.phishing_sites]
        ips_b = [r.ip for r in b.phishing_sites]
        assert ips_a == ips_b

    def test_blacklist_contents_identical(self, twin_worlds):
        a, b = twin_worlds
        for domain in a.phishing_domains():
            assert (a.blacklists.check(domain).detected
                    == b.blacklists.check(domain).detected)


class TestPipelineDeterminism:
    @pytest.fixture(scope="class")
    def twin_results(self, twin_worlds):
        config = PipelineConfig(cv_folds=3, rf_trees=8)
        a, b = twin_worlds
        result_a = SquatPhi(a, config).run(follow_up_snapshots=False)
        result_b = SquatPhi(b, config).run(follow_up_snapshots=False)
        return result_a, result_b

    def test_squat_matches_identical(self, twin_results):
        a, b = twin_results
        assert [(m.domain, m.brand, m.squat_type) for m in a.squat_matches] \
            == [(m.domain, m.brand, m.squat_type) for m in b.squat_matches]

    def test_cv_reports_identical(self, twin_results):
        a, b = twin_results
        for name in a.cv_reports:
            assert a.cv_reports[name].row() == b.cv_reports[name].row()

    def test_verified_sets_identical(self, twin_results):
        a, b = twin_results
        assert a.verified_domains() == b.verified_domains()

    def test_flagged_scores_identical(self, twin_results):
        a, b = twin_results
        scores_a = sorted((f.domain, f.profile, round(f.score, 10))
                          for f in a.flagged)
        scores_b = sorted((f.domain, f.profile, round(f.score, 10))
                          for f in b.flagged)
        assert scores_a == scores_b


class TestScanWorkerDeterminism:
    def test_scan_counts_workers_equal_serial(self, twin_worlds):
        world, _ = twin_worlds
        detector = SquattingDetector(world.catalog)
        serial = detector.scan_counts(world.zone)
        assert sum(serial.values()) > 0
        # chunk-histogram merges are additive (associative), so any
        # worker count / chunk size must reproduce the serial histogram
        for workers, chunk_size in ((2, 16), (4, 7)):
            assert detector.scan_counts(
                world.zone, workers=workers, chunk_size=chunk_size) == serial

    def test_scan_sharded_workers_equal_serial(self, twin_worlds):
        world, _ = twin_worlds
        detector = SquattingDetector(world.catalog)
        serial = [(m.domain, m.brand, m.squat_type)
                  for m in detector.scan(world.zone)]
        sharded = [(m.domain, m.brand, m.squat_type)
                   for m in detector.scan_sharded(world.zone, workers=4,
                                                  chunk_size=11)]
        assert sharded == serial


def _assert_byte_equivalent(result, reference):
    """The §10 contract: worker knobs never change an output byte."""
    assert [(m.domain, m.brand, m.squat_type) for m in result.squat_matches] \
        == [(m.domain, m.brand, m.squat_type) for m in reference.squat_matches]
    assert [s.digest() for s in result.crawl_snapshots] == \
        [s.digest() for s in reference.crawl_snapshots]
    for name in reference.cv_reports:
        assert result.cv_reports[name].row() == reference.cv_reports[name].row()
        assert result.cv_reports[name].auc == reference.cv_reports[name].auc
    # scores compared exactly, not rounded: byte-identical is the contract
    assert sorted((f.domain, f.profile, f.score) for f in result.flagged) == \
        sorted((f.domain, f.profile, f.score) for f in reference.flagged)
    assert result.verified_domains() == reference.verified_domains()


class TestThroughputKnobDeterminism:
    """--train-workers / --extract-workers are pure throughput knobs
    (DESIGN.md §10): every output byte matches the serial run."""

    @pytest.fixture(scope="class")
    def serial_result(self):
        config = PipelineConfig(cv_folds=3, rf_trees=8)
        return SquatPhi(build_world(SMALL), config).run(
            follow_up_snapshots=False)

    def _run(self, **overrides):
        config = PipelineConfig(cv_folds=3, rf_trees=8, **overrides)
        return SquatPhi(build_world(SMALL), config).run(
            follow_up_snapshots=False)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_counts_change_no_output_byte(self, serial_result, workers):
        result = self._run(train_workers=workers, extract_workers=workers)
        _assert_byte_equivalent(result, serial_result)

    def test_legacy_ml_path_matches_vectorized(self, serial_result):
        # the pre-vectorization reference path (bench baseline) must agree
        # byte for byte with the production vectorized path
        result = self._run(legacy_ml=True)
        _assert_byte_equivalent(result, serial_result)

    def test_resume_from_store_across_worker_counts(self, serial_result,
                                                    tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = SquatPhi(build_world(SMALL), PipelineConfig(
            cv_folds=3, rf_trees=8, train_workers=2, extract_workers=2))
        first_result = first.run(follow_up_snapshots=False, store=store)
        _assert_byte_equivalent(first_result, serial_result)

        # worker knobs sit outside every stage fingerprint, so a serial
        # resume of the parallel run is served entirely from the store
        rerun = SquatPhi(build_world(SMALL),
                         PipelineConfig(cv_folds=3, rf_trees=8))
        result = rerun.run(follow_up_snapshots=False, store=store,
                           resume=first.run_id)
        assert result is not None
        _assert_byte_equivalent(result, serial_result)
        assert {"train", "classify"} <= set(rerun.perf.cached_stages)
