"""Unicode confusables table and the homograph matching DP."""

import pytest

from repro.squatting.confusables import (
    ASCII_CONFUSABLES,
    CONFUSABLES,
    MULTI_CHAR_CONFUSABLES,
    confusable_variants,
    dnstwist_subset,
    matches_homograph,
    readable_bases,
    skeleton,
)


class TestTableShape:
    def test_a_has_many_variants(self):
        # the paper's complaint: DNSTwist maps only 13 of the 23 look-alikes
        # of "a"; our table carries the fuller set
        assert len(CONFUSABLES["a"]) >= 20

    def test_dnstwist_subset_is_smaller(self):
        reduced = dnstwist_subset()
        assert len(reduced["a"]) < len(CONFUSABLES["a"])
        assert len(reduced["a"]) == max(1, len(CONFUSABLES["a"]) * 13 // 23)

    def test_ascii_confusables_are_hostname_safe(self):
        for base, variants in ASCII_CONFUSABLES.items():
            for variant in variants:
                assert all(c in "abcdefghijklmnopqrstuvwxyz0123456789-" for c in variant), (
                    base, variant)

    def test_multichar_sorted_longest_first(self):
        lengths = [len(v) for v, _ in MULTI_CHAR_CONFUSABLES]
        assert lengths == sorted(lengths, reverse=True)

    def test_readable_bases(self):
        assert "o" in readable_bases("0")
        assert "l" in readable_bases("1")
        assert "i" in readable_bases("1")


class TestMatching:
    @pytest.mark.parametrize("label,target", [
        ("faceb00k", "facebook"),   # digit homoglyphs
        ("goog1e", "google"),       # 1 can read as l
        ("rnicrosoft", "microsoft"),  # multi-char rn -> m
        ("paypa1", "paypal"),
        ("fàcebook", "facebook"),   # accented unicode
        ("pаypal", "paypal"),       # cyrillic а
        ("tacebook", "facebook"),   # t/f crossbar confusion (Table 13)
        ("vvikipedia", "wikipedia"),  # vv -> w
    ])
    def test_positive(self, label, target):
        assert matches_homograph(label, target)

    @pytest.mark.parametrize("label,target", [
        ("facebook", "facebook"),   # identity is not a homograph
        ("fakebook", "facebook"),   # k is not a c look-alike
        ("facebooks", "facebook"),  # length mismatch w/o multi-char
        ("random", "facebook"),
        ("", "facebook"),
    ])
    def test_negative(self, label, target):
        assert not matches_homograph(label, target)

    def test_multichar_at_word_start_and_end(self):
        assert matches_homograph("rnail", "mail")
        assert matches_homograph("tearn", "team")


class TestSkeleton:
    def test_ascii_letters_map_to_themselves(self):
        assert skeleton("paypal") == "paypal"

    def test_digits_collapse(self):
        assert skeleton("faceb00k") == "facebook"

    def test_unicode_collapses(self):
        assert skeleton("fàcebook") == "facebook"

    def test_multichar_collapses(self):
        assert skeleton("rnicrosoft") == "microsoft"


def test_confusable_variants_lookup():
    assert "0" in confusable_variants("o")
    assert confusable_variants("o", ascii_only=True) == ("0",)
    assert confusable_variants("?") == ()
