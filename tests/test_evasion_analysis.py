"""Evasion measurement primitives (§4.2)."""

import numpy as np
import pytest

from repro.analysis.evasion import (
    layout_distance,
    measure_evasion,
    measure_page,
    per_brand_layout_distances,
    per_brand_obfuscation_rates,
    string_obfuscated,
)
from repro.web.html import document, el, parse_html
from repro.web.screenshot import render_page


def page_html(*body, title="T"):
    return document(title, *body).to_html()


class TestStringObfuscation:
    def test_plaintext_brand_not_obfuscated(self):
        html = page_html(el("h1", "PayPal"), el("p", "Sign in to PayPal"))
        assert not string_obfuscated(html, "paypal")

    def test_brand_in_image_is_obfuscated(self):
        html = page_html(el("img", data_embedded_text="paypal", height="48"))
        assert string_obfuscated(html, "paypal")

    def test_homoglyph_perturbed_brand_is_obfuscated(self):
        # the paper's "PayPaI" example
        html = page_html(el("h1", "PayPaI"))
        assert string_obfuscated(html, "paypal")

    def test_brand_in_script_does_not_count(self):
        html = page_html(el("script", "var brand = 'paypal';"))
        assert string_obfuscated(html, "paypal")


class TestLayoutDistance:
    def test_identical_pages(self):
        shot = render_page(parse_html(page_html(el("h1", "Brand"))))
        assert layout_distance(shot.pixels, shot.pixels) == 0

    def test_obfuscated_layout_increases_distance(self):
        original = render_page(parse_html(page_html(
            el("h1", "Brand"), el("p", "welcome"), el("form", el("input", type="password", placeholder="password")))))
        shuffled = render_page(parse_html(page_html(
            el("p", "totally different introduction paragraph with filler"),
            el("p", "more filler text pushed above the fold"),
            el("form", el("input", type="password", placeholder="password")),
            el("h1", "Brand"),
        )))
        assert layout_distance(shuffled.pixels, original.pixels) > 5


class TestMeasurePage:
    def test_full_measurement(self):
        html = page_html(
            el("img", data_embedded_text="paypal", height="48"),
            el("script", "eval(unescape('%41')); String.fromCharCode(65);"),
        )
        shot = render_page(parse_html(html))
        original = render_page(parse_html(page_html(el("h1", "PayPal"))))
        m = measure_page("evil.com", "paypal", html, shot.pixels, original.pixels)
        assert m.string_obfuscated
        assert m.code_obfuscated
        assert m.layout_distance is not None

    def test_without_pixels(self):
        m = measure_page("evil.com", "paypal", page_html(el("p", "x")))
        assert m.layout_distance is None


class TestAggregation:
    def make_measurements(self):
        out = []
        for i in range(10):
            m = measure_page(
                f"d{i}.com", "paypal" if i < 6 else "google",
                page_html(el("h1", "X")),
            )
            m.layout_distance = 20 + i
            m.string_obfuscated = i % 2 == 0
            m.code_obfuscated = i < 3
            out.append(m)
        return out

    def test_summary(self):
        summary = measure_evasion(self.make_measurements(), "test")
        assert summary.count == 10
        assert summary.layout_mean == pytest.approx(24.5)
        assert summary.string_rate == pytest.approx(0.5)  # i in {0,2,4,6,8}
        assert summary.code_rate == pytest.approx(0.3)

    def test_empty_population(self):
        summary = measure_evasion([], "empty")
        assert summary.count == 0
        assert summary.layout_mean == 0.0

    def test_per_brand_views(self):
        measurements = self.make_measurements()
        distances = per_brand_layout_distances(measurements)
        assert set(distances) == {"paypal", "google"}
        mean, std, n = distances["paypal"]
        assert n == 6
        rates = per_brand_obfuscation_rates(measurements)
        assert rates["paypal"][2] == 6
