"""Incremental pipeline runs: persistence, resume, and determinism.

The contract under test (DESIGN.md §9): a run resumed from a persistent
artifact store — after a kill at stage granularity or mid-crawl — and an
incremental re-run that reuses cached stages both produce byte-identical
crawl snapshot digests and identical verified sets to a fresh serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.core import PipelineConfig, SquatPhi
from repro.faults import FaultPlan
from repro.phishworld.world import WorldConfig, build_world
from repro.stages import ArtifactStore, digest_detections

WORLD_CONFIG = WorldConfig(
    seed=7,
    n_organic_domains=40,
    n_squat_domains=60,
    n_phish_domains=8,
    phishtank_reports=30,
)


def make_pipeline(**overrides) -> SquatPhi:
    """A small faulty-world pipeline; every call builds identical state."""
    config = PipelineConfig(
        cv_folds=3,
        rf_trees=6,
        snapshots=2,
        fault_plan=FaultPlan.uniform(0.2, seed=17),
    )
    for name, value in overrides.items():
        setattr(config, name, value)
    return SquatPhi(build_world(WORLD_CONFIG), config)


@pytest.fixture(scope="module")
def fresh():
    """One fresh serial run: the determinism reference."""
    pipeline = make_pipeline()
    result = pipeline.run()
    return pipeline, result


def _assert_matches_reference(result, reference) -> None:
    """The §9 contract: byte-identical digests, identical verified sets.

    Health must match too; the injected-fault tally is compared without
    ``ocr_garble``, which counts extraction *events* — a resumed run may
    re-extract content the fresh run had warm in the feature cache, firing
    extra (content-keyed, hence result-identical) OCR draws.
    """
    assert [s.digest() for s in result.crawl_snapshots] == \
        [s.digest() for s in reference.crawl_snapshots]
    assert [v.domain for v in result.verified] == \
        [v.domain for v in reference.verified]
    assert digest_detections(result.flagged) == \
        digest_detections(reference.flagged)
    assert result.health.to_dict() == reference.health.to_dict()
    strip = lambda counts: {k: v for k, v in counts.items()
                            if k != "ocr_garble"}
    assert strip(result.injected_faults) == strip(reference.injected_faults)


# ----------------------------------------------------------------------
# satellite: uniform stage timing
# ----------------------------------------------------------------------

def test_every_stage_is_timed(fresh):
    pipeline, _ = fresh
    assert set(pipeline.perf.stage_seconds) == {
        "scan", "enrich", "crawl", "ground_truth", "train",
        "classify", "verify", "follow_ups", "evasion",
    }
    assert all(s >= 0.0 for s in pipeline.perf.stage_seconds.values())


def test_summary_is_json_serializable(fresh):
    _, result = fresh
    payload = json.loads(json.dumps(result.summary(), sort_keys=True))
    assert payload["run_id"] == result.run_id
    assert payload["counts"]["verified"] == len(result.verified)
    assert payload["snapshot_digests"] == \
        [s.digest() for s in result.crawl_snapshots]
    assert "stage_seconds" in payload["perf"]


# ----------------------------------------------------------------------
# resume after a kill at stage granularity
# ----------------------------------------------------------------------

def test_resume_after_kill_matches_fresh(fresh, tmp_path):
    _, reference = fresh
    store = ArtifactStore(tmp_path / "store")

    killed = make_pipeline()
    assert killed.run(store=store, stop_after="train") is None
    manifest = store.load_manifest(killed.run_id)
    assert sorted(manifest.records) == ["crawl", "enrich", "ground_truth",
                                        "scan", "train"]
    assert all(r.status == "complete" for r in manifest.records.values())

    resumed = make_pipeline()     # a brand-new process, conceptually
    result = resumed.run(store=store, resume=killed.run_id)
    assert result is not None
    _assert_matches_reference(result, reference)
    assert sorted(resumed.perf.cached_stages) == ["crawl", "enrich",
                                                  "ground_truth",
                                                  "scan", "train"]
    # the executed remainder was timed; the cached prefix charged nothing
    assert {"classify", "verify", "follow_ups", "evasion"} <= \
        set(resumed.perf.stage_seconds)
    assert not {"scan", "enrich", "crawl"} & set(resumed.perf.stage_seconds)
    assert result.run_id == killed.run_id


# ----------------------------------------------------------------------
# resume after a kill mid-crawl (partial stage artifacts)
# ----------------------------------------------------------------------

def test_mid_crawl_kill_resumes_from_partial(fresh, tmp_path, monkeypatch):
    _, reference = fresh
    store = ArtifactStore(tmp_path / "store")

    killed = make_pipeline(checkpoint_interval=30)
    original_save = ArtifactStore.save_partial
    saves = {"count": 0}

    def dying_save(self, run_id, stage, fingerprint, payload):
        saves["count"] += 1
        if saves["count"] >= 3:
            raise RuntimeError("simulated kill mid-crawl")
        original_save(self, run_id, stage, fingerprint, payload)

    monkeypatch.setattr(ArtifactStore, "save_partial", dying_save)
    with pytest.raises(RuntimeError, match="simulated kill"):
        killed.run(store=store)
    monkeypatch.undo()
    run_id = killed.run_id

    # two checkpoint slices made it to disk before the "kill"
    fresh_store = ArtifactStore(tmp_path / "store")
    manifest = fresh_store.load_manifest(run_id)
    assert "crawl" not in manifest.records       # stage never completed
    record = manifest.records["scan"]
    partial = fresh_store.load_partial(run_id, "crawl",
                                       {"code": "", "config": "",
                                        "inputs": ""})
    # fingerprint-bound: a bogus fingerprint must not see the progress
    assert partial is None

    resumed = make_pipeline(checkpoint_interval=30)
    result = resumed.run(store=fresh_store, resume=run_id)
    assert result is not None
    _assert_matches_reference(result, reference)
    # checkpoint slices were folded back in rather than re-crawled
    assert resumed.health.resumes >= 1
    assert record.status == "complete"


# ----------------------------------------------------------------------
# incremental re-runs
# ----------------------------------------------------------------------

def test_retrain_only_rerun_reuses_scan_and_crawl(fresh, tmp_path):
    _, reference = fresh
    store = ArtifactStore(tmp_path / "store")

    first = make_pipeline()
    first_result = first.run(store=store)
    _assert_matches_reference(first_result, reference)

    rerun = make_pipeline()
    result = rerun.run(store=store, resume=first.run_id, from_stage="train")
    assert result is not None
    _assert_matches_reference(result, reference)
    assert sorted(rerun.perf.cached_stages) == ["crawl", "enrich",
                                                "ground_truth", "scan"]
    assert {"train", "classify", "verify"} <= set(rerun.perf.stage_seconds)


def test_changed_verify_slice_invalidates_exactly_verify(fresh, tmp_path):
    _, reference = fresh
    store = ArtifactStore(tmp_path / "store")

    first = make_pipeline()
    first.run(store=store)

    # reviewer_error_rate sits in the verify stage's config slice only
    rerun = make_pipeline(reviewer_error_rate=0.25)
    result = rerun.run(store=store, resume=first.run_id)
    assert result is not None
    assert sorted(rerun.perf.cached_stages) == \
        ["classify", "crawl", "enrich", "ground_truth", "scan", "train"]
    assert "verify" in rerun.perf.stage_seconds
    manifest = rerun.last_manifest
    assert not manifest.records["verify"].cached
    # upstream artifacts stayed byte-identical
    assert result.crawl_snapshots[0].digest() == \
        reference.crawl_snapshots[0].digest()


def test_changed_extraction_slice_invalidates_ground_truth_chain(
        fresh, tmp_path):
    store = ArtifactStore(tmp_path / "store")

    first = make_pipeline()
    first.run(store=store)

    # use_ocr participates in ground_truth and classify slices; scan and
    # crawl never touch extraction and must stay cached
    rerun = make_pipeline(use_ocr=False)
    result = rerun.run(store=store, resume=first.run_id)
    assert result is not None
    assert sorted(rerun.perf.cached_stages) == ["crawl", "enrich", "scan"]
    assert {"ground_truth", "train", "classify", "verify"} <= \
        set(rerun.perf.stage_seconds)


# ----------------------------------------------------------------------
# satellite: feedback retraining reuses carried features
# ----------------------------------------------------------------------

def test_retrain_with_feedback_skips_re_extraction(fresh):
    pipeline, result = fresh
    assert result.flagged, "fixture must flag something"
    assert all(d.features is not None for d in result.flagged)

    stats = pipeline.capture_cache.stats
    misses_before = stats.feature_misses
    reports = pipeline.retrain_with_feedback(
        result.ground_truth, result.flagged, result.verified)
    assert reports
    # every detection carried its features, so retraining performed no
    # feature extraction at all — not even cache hits were needed
    assert stats.feature_misses == misses_before
