"""Resilient crawl scheduler: typed faults, backoff, breakers, resume."""

import pytest

from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultKind,
    FaultPlan,
    SimClock,
)
from repro.web.crawler import CrawlSnapshot, DistributedCrawler
from repro.web.html import document, el
from repro.web.server import HostedSite, SiteBehavior, WebHost


@pytest.fixture()
def host():
    host = WebHost()
    for i in range(8):
        page = document(f"Site {i}", el("p", f"content {i}"))
        host.register(HostedSite(
            domain=f"site{i}.com", behavior=SiteBehavior.CONTENT,
            provider=lambda ua, snap, p=page: p,
        ))
    host.register(HostedSite(domain="gone.com", behavior=SiteBehavior.DEAD))
    return host


def all_domains(host):
    return sorted(site.domain for site in host.sites())


def faulty_crawler(host, rate, seed=0, **kwargs):
    injector = FaultInjector(FaultPlan.uniform(rate, seed=seed))
    return DistributedCrawler(host, workers=3, fault_injector=injector, **kwargs)


class TestValidation:
    def test_rejects_negative_max_retries(self, host):
        with pytest.raises(ValueError):
            DistributedCrawler(host, max_retries=-1)

    def test_rejects_zero_workers(self, host):
        with pytest.raises(ValueError):
            DistributedCrawler(host, workers=0)


class TestDuplicateDomains:
    def test_duplicates_deduped_before_dispatch(self, host):
        crawler = DistributedCrawler(host, workers=2)
        clean = crawler.crawl(["site0.com", "site1.com"])
        doubled = crawler.crawl(
            ["site0.com", "SITE0.com", "site1.com", "site0.com", "site1.com"])
        assert len(doubled.results) == len(clean.results) == 4
        # scheduling/retry accounting must not be inflated by duplicates
        assert sum(doubled.worker_job_counts) == sum(clean.worker_job_counts) == 4
        assert doubled.retries == clean.retries
        assert doubled.digest() == clean.digest()


class TestTypedFaultInjection:
    def test_faults_injected_and_retried(self, host):
        snapshot = faulty_crawler(host, 0.4, seed=2).crawl(all_domains(host))
        assert snapshot.retries > 0
        assert sum(snapshot.health.failures.values()) == snapshot.retries
        # the typed taxonomy shows up, not just one flat failure kind
        assert len(snapshot.health.failures) >= 2
        assert set(snapshot.health.failures) <= set(FaultKind.TRANSPORT) | {"breaker_open"}

    def test_health_accounting_consistent(self, host):
        snapshot = faulty_crawler(host, 0.3, seed=3).crawl(all_domains(host))
        health = snapshot.health
        assert health.attempts == health.successes + sum(health.failures.values())
        assert health.dead_letters == len(snapshot.dead_letters)
        jobs = len(snapshot.results)
        assert health.successes + health.dead_letters == jobs
        assert health.backoff_seconds > 0

    def test_dead_letters_when_retries_exhausted(self, host):
        snapshot = faulty_crawler(host, 0.8, seed=1, max_retries=1).crawl(
            all_domains(host))
        assert snapshot.dead_letters
        for letter in snapshot.dead_letters:
            assert letter.attempts >= 1 or letter.last_fault == "breaker_open"
            result = snapshot.get(letter.domain, letter.profile)
            assert result is not None and not result.live

    def test_zero_rate_plan_changes_nothing(self, host):
        plain = DistributedCrawler(host, workers=3).crawl(all_domains(host))
        wired = faulty_crawler(host, 0.0).crawl(all_domains(host))
        assert wired.digest() == plain.digest()
        assert not wired.dead_letters
        assert wired.health.retries == 0

    def test_slow_responses_counted_and_charged(self, host):
        injector = FaultInjector(FaultPlan(seed=4, slow_response_rate=0.5,
                                           slow_response_delay=3.0))
        crawler = DistributedCrawler(host, workers=2, fault_injector=injector)
        snapshot = crawler.crawl(all_domains(host))
        assert snapshot.health.slow_responses > 0
        assert crawler.clock.now() >= 3.0
        # slow responses degrade latency, they do not kill the visit
        assert snapshot.stats("web")["live"] == 8


class TestCircuitBreaker:
    def test_breaker_trips_on_persistently_failing_host(self, host):
        # one host resets every connection; everyone else is healthy
        injector = FaultInjector(FaultPlan(seed=0, conn_reset_rate=0.999))
        crawler = DistributedCrawler(
            host, workers=2, fault_injector=injector, max_retries=5,
            breaker_failure_threshold=3, breaker_reset_timeout=1e9,
        )
        snapshot = crawler.crawl(["site0.com"])
        assert snapshot.health.breaker_trips >= 1
        assert snapshot.health.breaker_skips >= 1
        assert snapshot.breaker_states["site0.com"][0] == CircuitBreaker.OPEN
        assert {letter.last_fault for letter in snapshot.dead_letters} <= {
            FaultKind.CONN_RESET, "breaker_open"}

    def test_open_breaker_stops_hammering(self, host):
        injector = FaultInjector(FaultPlan(seed=0, conn_reset_rate=0.999))
        crawler = DistributedCrawler(
            host, workers=2, fault_injector=injector, max_retries=5,
            breaker_failure_threshold=3, breaker_reset_timeout=1e9,
        )
        snapshot = crawler.crawl(["site0.com"])
        # without a breaker both jobs would burn 6 attempts each
        assert snapshot.health.attempts < 12

    def test_healthy_hosts_never_trip(self, host):
        snapshot = DistributedCrawler(host, workers=3).crawl(all_domains(host))
        assert snapshot.health.breaker_trips == 0
        assert snapshot.breaker_states == {}


class TestDeterminism:
    def test_same_plan_same_snapshot_digest(self, host):
        snap_a = faulty_crawler(host, 0.25, seed=9).crawl(all_domains(host))
        snap_b = faulty_crawler(host, 0.25, seed=9).crawl(all_domains(host))
        assert snap_a.digest() == snap_b.digest()
        assert snap_a.retries == snap_b.retries
        assert [l.key() for l in snap_a.dead_letters] == [
            l.key() for l in snap_b.dead_letters]

    def test_different_seed_different_weather(self, host):
        snap_a = faulty_crawler(host, 0.25, seed=9).crawl(all_domains(host))
        snap_b = faulty_crawler(host, 0.25, seed=10).crawl(all_domains(host))
        assert snap_a.digest() != snap_b.digest()

    def test_legacy_transient_rate_still_deterministic(self, host):
        a = DistributedCrawler(host, workers=2, transient_failure_rate=0.3)
        b = DistributedCrawler(host, workers=2, transient_failure_rate=0.3)
        assert a.crawl(all_domains(host)).digest() == b.crawl(all_domains(host)).digest()


class TestCheckpointResume:
    def test_partial_crawl_carries_checkpoint(self, host):
        crawler = faulty_crawler(host, 0.25, seed=6)
        partial = crawler.crawl(all_domains(host), max_jobs=5)
        assert not partial.complete
        assert partial.checkpoint is not None
        assert partial.checkpoint.completed_jobs == 5
        assert len(partial.results) == 5

    def test_resume_skips_completed_jobs(self, host):
        crawler = faulty_crawler(host, 0.25, seed=6)
        partial = crawler.crawl(all_domains(host), max_jobs=5)
        attempts_before = partial.health.attempts
        finished = crawler.crawl(all_domains(host), resume=partial.checkpoint)
        assert finished.complete
        assert finished.checkpoint is None
        assert len(finished.results) == len(all_domains(host)) * 2
        assert finished.health.resumes == 1
        # the resumed pass added attempts only for the remaining jobs
        assert finished.health.attempts > attempts_before

    def test_resumed_equals_uninterrupted(self, host):
        uninterrupted = faulty_crawler(host, 0.25, seed=6).crawl(all_domains(host))

        crawler = faulty_crawler(host, 0.25, seed=6)
        partial = crawler.crawl(all_domains(host), max_jobs=7)
        resumed = crawler.crawl(all_domains(host), resume=partial.checkpoint)
        assert resumed.digest() == uninterrupted.digest()

    def test_resume_across_crawler_instances(self, host):
        """A killed crawl continues in a brand-new crawler process."""
        uninterrupted = faulty_crawler(host, 0.25, seed=6).crawl(all_domains(host))

        partial = faulty_crawler(host, 0.25, seed=6).crawl(
            all_domains(host), max_jobs=4)
        fresh = faulty_crawler(host, 0.25, seed=6)
        resumed = fresh.crawl(all_domains(host), resume=partial.checkpoint)
        assert resumed.digest() == uninterrupted.digest()

    def test_multiple_interruptions(self, host):
        uninterrupted = faulty_crawler(host, 0.25, seed=6).crawl(all_domains(host))

        crawler = faulty_crawler(host, 0.25, seed=6)
        state = crawler.crawl(all_domains(host), max_jobs=3)
        while not state.complete:
            state = crawler.crawl(all_domains(host),
                                  resume=state.checkpoint, max_jobs=3)
        assert state.digest() == uninterrupted.digest()

    def test_checkpoint_snapshot_mismatch_rejected(self, host):
        crawler = faulty_crawler(host, 0.25, seed=6)
        partial = crawler.crawl(all_domains(host), max_jobs=2)
        with pytest.raises(ValueError):
            crawler.crawl(all_domains(host), snapshot=1, resume=partial.checkpoint)
