"""Unified squatting detector over brand catalogs and zones."""

import pytest

from repro.brands import Brand, BrandCatalog
from repro.dns.idna import IDNAError, label_to_unicode
from repro.dns.zone import ZoneStore
from repro.squatting.detector import SquattingDetector
from repro.squatting.types import SquatType


@pytest.fixture(scope="module")
def detector():
    catalog = BrandCatalog([
        Brand(name="facebook", domain="facebook.com", sensitivity="login"),
        Brand(name="google", domain="google.com", sensitivity="login"),
        Brand(name="uber", domain="uber.com", sensitivity="login"),
        Brand(name="adp", domain="adp.com", sensitivity="payment"),
        Brand(name="bt", domain="bt.com"),
    ])
    return SquattingDetector(catalog)


# Table 1 of the paper, plus §3.1 matching rules.
PAPER_EXAMPLES = [
    ("faceb00k.pw", "facebook", SquatType.HOMOGRAPH),
    ("xn--fcebook-8va.com", "facebook", SquatType.HOMOGRAPH),
    ("facebnok.tk", "facebook", SquatType.BITS),
    ("facebo0ok.com", "facebook", SquatType.TYPO),
    ("fcaebook.org", "facebook", SquatType.TYPO),
    ("facebook-story.de", "facebook", SquatType.COMBO),
    ("facebook.audi", "facebook", SquatType.WRONG_TLD),
    ("go-uberfreight.com", "uber", SquatType.COMBO),
    ("mobile-adp.com", "adp", SquatType.COMBO),
    ("goog1e.nl", "google", SquatType.HOMOGRAPH),
    ("goofle.com.ua", "google", SquatType.BITS),
]


@pytest.mark.parametrize("domain,brand,squat_type", PAPER_EXAMPLES)
def test_paper_examples(detector, domain, brand, squat_type):
    match = detector.classify_domain(domain)
    assert match is not None, domain
    assert match.brand == brand
    assert match.squat_type == squat_type


def test_subdomains_are_ignored(detector):
    # §3.1: mail.google-app.de is combo squatting on google
    match = detector.classify_domain("mail.google-app.de")
    assert match is not None
    assert match.brand == "google"
    assert match.squat_type == SquatType.COMBO


def test_brand_own_domain_is_not_squatting(detector):
    assert detector.classify_domain("facebook.com") is None
    assert detector.classify_domain("www.facebook.com") is None


def test_unrelated_domains_are_clean(detector):
    for domain in ("example.com", "weatherreport.net", "quiteunrelated.org"):
        assert detector.classify_domain(domain) is None


def test_short_brand_needs_exact_combo_token(detector):
    # "bt" may not match inside arbitrary hyphenated words
    assert detector.classify_domain("about-this.com") is None
    match = detector.classify_domain("bt-login.com")
    assert match is not None and match.brand == "bt"


def test_type_priority_is_orthogonal(detector):
    """A label reachable as both homograph and typo must take the
    higher-priority label exactly once."""
    match = detector.classify_domain("faceb00k.com")
    assert match.squat_type == SquatType.HOMOGRAPH


def test_scan_over_zone(detector):
    zone = ZoneStore()
    squats = ["faceb00k.pw", "facebook-story.de", "facebook.audi"]
    clean = ["example.com", "another.net"]
    for name in squats + clean:
        zone.add_name(name)
    matches = detector.scan(zone)
    assert {m.domain for m in matches} == set(squats)


def test_scan_counts(detector):
    zone = ZoneStore()
    for name in ("faceb00k.pw", "facebnok.tk", "facebo0ok.com",
                 "facebook-story.de", "facebook.audi", "example.com"):
        zone.add_name(name)
    counts = detector.scan_counts(zone)
    assert counts[SquatType.HOMOGRAPH] == 1
    assert counts[SquatType.BITS] == 1
    assert counts[SquatType.TYPO] == 1
    assert counts[SquatType.COMBO] == 1
    assert counts[SquatType.WRONG_TLD] == 1


def _match_idn_full_catalog(detector, domain, core):
    """The pre-bucket IDN matcher: loop the whole catalog in insertion
    order, gated only on a ±1 length window around the displayed label.
    Kept inline as the regression oracle for the bucket pre-filter."""
    try:
        displayed = label_to_unicode(core)
    except IDNAError:
        return None
    for brand in detector.catalog:
        label = brand.core_label
        if abs(len(displayed) - len(label)) > 1:
            continue
        if detector.generator.homograph.matches(core, label):
            return (brand.name, f"idn:{displayed}")
    return None


def test_idn_bucket_prefilter_matches_full_catalog_loop(detector):
    """The length/edge-character buckets must never change a verdict —
    same brand, same detail, same misses as the brute-force catalog scan."""
    cores = set()
    for brand in detector.catalog:
        cores.update(detector.generator.homograph.generate_idn(
            brand.core_label, max_variants=80))
    # decoys squatting nothing in the catalog must miss both ways
    for word in ("example", "weather", "netflix", "ub"):
        cores.update(sorted(detector.generator.homograph.generate_idn(
            word, max_variants=20)))
    assert len(cores) > 100
    hits = 0
    for core in sorted(cores):
        domain = f"{core}.com"
        got = detector._match_idn(domain, core)
        want = _match_idn_full_catalog(detector, domain, core)
        if want is None:
            assert got is None, core
        else:
            hits += 1
            assert got is not None, core
            assert (got.brand, got.detail) == want, core
            assert got.squat_type == SquatType.HOMOGRAPH
    assert hits > 50  # the oracle must actually exercise the match path


def test_world_truth_agreement(micro_world):
    """Every squat registered by the world generator is found and typed
    identically by the detector (generator/detector consistency)."""
    detector = SquattingDetector(micro_world.catalog)
    matches = {m.domain: m for m in detector.scan(micro_world.zone)}
    missed = []
    mistyped = []
    for domain, (brand, squat_type) in micro_world.squat_truth.items():
        match = matches.get(domain)
        if match is None:
            missed.append(domain)
        elif match.squat_type != squat_type:
            mistyped.append((domain, squat_type, match.squat_type))
    assert len(missed) <= 0.02 * len(micro_world.squat_truth), missed[:10]
    assert not mistyped, mistyped[:10]
