"""Punycode codec: RFC 3492 conformance and stdlib cross-validation."""

import pytest

from repro.dns.idna import (
    ACE_PREFIX,
    IDNAError,
    domain_to_ascii,
    domain_to_unicode,
    is_idn,
    label_to_ascii,
    label_to_unicode,
    punycode_decode,
    punycode_encode,
)

# RFC 3492 §7.1 sample strings (the non-case-sensitive ones).
RFC_SAMPLES = [
    ("他们为什么不说中文",
     "ihqwcrb4cv8a8dqg056pqjye"),
    ("そのスピードで", "d9juau41awczczp"),
    ("bücher", "bcher-kva"),
]


@pytest.mark.parametrize("unicode_label,encoded", RFC_SAMPLES)
def test_rfc3492_samples_encode(unicode_label, encoded):
    assert punycode_encode(unicode_label) == encoded


@pytest.mark.parametrize("unicode_label,encoded", RFC_SAMPLES)
def test_rfc3492_samples_decode(unicode_label, encoded):
    assert punycode_decode(encoded) == unicode_label


@pytest.mark.parametrize("label", [
    "fàcebook", "pаypal", "gооgle", "façade", "über", "bücher",
    "αβγ", "київ", "日本語",
])
def test_roundtrip_and_stdlib_agreement(label):
    encoded = punycode_encode(label)
    assert encoded == label.encode("punycode").decode("ascii")
    assert punycode_decode(encoded) == label


def test_ascii_only_label_is_untouched():
    assert label_to_ascii("facebook") == "facebook"
    assert label_to_unicode("facebook") == "facebook"


def test_paper_example_homograph_domain():
    # Figure 1 of the paper
    assert domain_to_unicode("xn--fcebook-8va.com") == "fàcebook.com"
    assert domain_to_ascii("fàcebook.com") == "xn--fcebook-8va.com"


def test_is_idn():
    assert is_idn("xn--fcebook-8va.com")
    assert not is_idn("facebook.com")


def test_decode_rejects_nonbasic_before_delimiter():
    with pytest.raises(IDNAError):
        punycode_decode("fà-xyz")


def test_decode_rejects_truncated_input():
    with pytest.raises(IDNAError):
        punycode_decode("bcher-kv")


def test_decode_rejects_bad_digit():
    with pytest.raises(IDNAError):
        punycode_decode("abc-!!")


def test_encode_empty_basic_prefix():
    # label with no ASCII characters at all
    encoded = punycode_encode("ß")
    assert punycode_decode(encoded) == "ß"
    assert encoded == "ß".encode("punycode").decode("ascii")


def test_ace_prefix_constant():
    assert ACE_PREFIX == "xn--"
    assert label_to_ascii("fàcebook").startswith(ACE_PREFIX)
