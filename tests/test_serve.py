"""Interactive serving layer: batching, caching, hot reload, byte-identity.

The contract under test (DESIGN.md §13): every served verdict is a pure
function of (normalized name, snapshot generation).  Micro-batching,
the negative cache, worker count, and hot-reload timing are
throughput/latency knobs — any serving configuration must reproduce the
offline per-name scan/classify oracle byte for byte.
"""

from __future__ import annotations

import functools
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.brands import Brand, BrandCatalog
from repro.dns.packedzone import (
    PackedZone,
    PackedZoneBuilder,
    attach_enrichment,
    stamp_generation,
)
from repro.dns.zone import MISS, ZoneStore
from repro.enrich import EnrichmentTable
from repro.serve import (
    NegativeVerdictCache,
    QueryEngine,
    SnapshotPublisher,
    Verdict,
    digest_verdicts,
    offline_verdicts,
    percentile,
    plan_batches,
    serve_load,
    synth_requests,
    verdict_line,
)
from repro.squatting.detector import SquattingDetector

ZONE_NAMES = [
    "facebook.com", "www.facebook.com", "google.com", "paypal.com",
    "faceb00k.com", "paypa1.net", "xn--fcebook-8va.com",
    "example.org", "innocent-shop.net", "news.example.org",
]

QUERIES = [
    "facebook.com", "FACEBOOK.COM.", "faceb00k.com", "paypa1.net",
    "google.com", "example.org", "www.example.org", "never-seen.xyz",
    "gooogle.com", "paypal.com", "innocent-shop.net", "",
]


@pytest.fixture(scope="module")
def detector():
    catalog = BrandCatalog()
    for domain in ("facebook.com", "google.com", "paypal.com"):
        catalog.add(Brand(name=domain.split(".")[0], domain=domain))
    return SquattingDetector(catalog)


@pytest.fixture(scope="module")
def zone():
    builder = PackedZoneBuilder()
    for i, name in enumerate(ZONE_NAMES):
        builder.add_name(name, ip=f"10.0.0.{i + 1}")
    return builder.build()


def _verdict(domain="benign.com", generation=0):
    return Verdict(domain=domain, generation=generation, registered=False)


# ----------------------------------------------------------------------
# negative-verdict cache
# ----------------------------------------------------------------------

def test_negcache_hit_returns_same_object():
    cache = NegativeVerdictCache(ttl=10.0, capacity=4)
    verdict = _verdict()
    cache.put("benign.com", 0, now=0.0, verdict=verdict)
    assert cache.get("benign.com", 0, now=5.0) is verdict
    assert cache.hits == 1


def test_negcache_ttl_expiry():
    cache = NegativeVerdictCache(ttl=10.0, capacity=4)
    cache.put("benign.com", 0, now=0.0, verdict=_verdict())
    assert cache.get("benign.com", 0, now=9.999) is not None
    assert cache.get("benign.com", 0, now=10.0) is None  # expiry inclusive
    assert len(cache) == 0  # expired entry dropped, not kept
    assert cache.misses == 1


def test_negcache_capacity_eviction_is_fifo():
    cache = NegativeVerdictCache(ttl=100.0, capacity=2)
    cache.put("a.com", 0, 0.0, _verdict("a.com"))
    cache.put("b.com", 0, 0.0, _verdict("b.com"))
    cache.put("c.com", 0, 0.0, _verdict("c.com"))  # evicts a.com
    assert cache.evictions == 1
    assert cache.get("a.com", 0, 1.0) is None
    assert cache.get("b.com", 0, 1.0) is not None
    assert cache.get("c.com", 0, 1.0) is not None


def test_negcache_reput_refreshes_fifo_slot():
    cache = NegativeVerdictCache(ttl=100.0, capacity=2)
    cache.put("a.com", 0, 0.0, _verdict("a.com"))
    cache.put("b.com", 0, 0.0, _verdict("b.com"))
    cache.put("a.com", 0, 1.0, _verdict("a.com"))  # re-put: a is now newest
    cache.put("c.com", 0, 2.0, _verdict("c.com"))  # evicts b, not a
    assert cache.get("a.com", 0, 3.0) is not None
    assert cache.get("b.com", 0, 3.0) is None


def test_negcache_generation_swap_invalidates():
    cache = NegativeVerdictCache(ttl=100.0, capacity=8)
    cache.put("benign.com", 1, 0.0, _verdict(generation=1))
    assert cache.get("benign.com", 2, 1.0) is None  # new generation: miss
    assert cache.invalidations == 1
    assert len(cache) == 0  # dropped eagerly


def test_negcache_purge_stale():
    cache = NegativeVerdictCache(ttl=100.0, capacity=8)
    cache.put("a.com", 1, 0.0, _verdict("a.com", 1))
    cache.put("b.com", 2, 0.0, _verdict("b.com", 2))
    assert cache.purge_stale(2) == 1
    assert len(cache) == 1
    assert cache.get("b.com", 2, 1.0) is not None


def test_negcache_rejects_bad_knobs():
    with pytest.raises(ValueError):
        NegativeVerdictCache(ttl=0.0)
    with pytest.raises(ValueError):
        NegativeVerdictCache(capacity=0)


# ----------------------------------------------------------------------
# micro-batch planning
# ----------------------------------------------------------------------

def test_plan_batches_respects_max_batch():
    requests = [(0.001 * i, f"d{i}.com") for i in range(10)]
    batches = plan_batches(requests, max_batch=4, max_delay=1.0)
    assert [len(b) for b in batches] == [4, 4, 2]
    # a size-closed batch dispatches at its filling request's arrival
    assert batches[0].dispatch_at == pytest.approx(0.003)
    # order is preserved end to end
    assert [n for b in batches for n in b.names] == \
        [name for _, name in requests]


def test_plan_batches_respects_max_delay():
    requests = [(0.0, "a.com"), (0.002, "b.com"), (0.050, "c.com")]
    batches = plan_batches(requests, max_batch=64, max_delay=0.005)
    assert [b.names for b in batches] == [("a.com", "b.com"), ("c.com",)]
    # a delay-closed batch leaves at its deadline, not the next arrival
    assert batches[0].dispatch_at == pytest.approx(0.005)
    assert batches[1].dispatch_at == pytest.approx(0.055)


def test_plan_batches_unbatched_degenerates():
    requests = [(0.01 * i, f"d{i}.com") for i in range(5)]
    batches = plan_batches(requests, max_batch=1, max_delay=0.0)
    assert [len(b) for b in batches] == [1] * 5
    assert [b.dispatch_at for b in batches] == [r[0] for r in requests]


def test_plan_batches_rejects_unsorted_stream():
    with pytest.raises(ValueError, match="arrival-ordered"):
        plan_batches([(1.0, "a.com"), (0.5, "b.com")], 64, 0.005)
    # the check must survive a flush boundary
    with pytest.raises(ValueError, match="arrival-ordered"):
        plan_batches([(1.0, "a.com"), (1.0, "b.com"), (0.5, "c.com")],
                     max_batch=2, max_delay=0.005)


def test_plan_batches_rejects_bad_knobs():
    with pytest.raises(ValueError):
        plan_batches([], max_batch=0, max_delay=0.1)
    with pytest.raises(ValueError):
        plan_batches([], max_batch=1, max_delay=-0.1)


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1,
                max_size=40),
       st.integers(min_value=1, max_value=7),
       st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=60, deadline=None)
def test_plan_batches_properties(gaps, max_batch, max_delay):
    at = 0.0
    requests = []
    for i, gap in enumerate(gaps):
        at += gap
        requests.append((at, f"d{i}.com"))
    batches = plan_batches(requests, max_batch, max_delay)
    # partition: every request appears exactly once, in order
    assert [n for b in batches for n in b.names] == \
        [name for _, name in requests]
    for batch in batches:
        assert 1 <= len(batch) <= max_batch
        # dispatch never precedes any member's arrival, never exceeds
        # the first member's deadline
        assert batch.dispatch_at >= batch.arrivals[-1] - 1e-9
        assert batch.dispatch_at <= batch.arrivals[0] + max_delay + 1e-9


# ----------------------------------------------------------------------
# zone lookup plumbing (satellites: MISS marker, registered_ids)
# ----------------------------------------------------------------------

def test_zonestore_get_many_returns_miss_marker():
    zone = ZoneStore()
    zone.add_name("facebook.com", ip="1.2.3.4")
    record, missing = zone.get_many(["FACEBOOK.COM.", "absent.org"])
    assert record.name == "facebook.com"
    assert missing is MISS
    assert not missing          # falsy by contract
    assert repr(missing) == "MISS"


def test_packed_get_many_matches_zonestore(zone):
    store = ZoneStore()
    for i, name in enumerate(ZONE_NAMES):
        store.add_name(name, ip=f"10.0.0.{i + 1}")
    queries = ZONE_NAMES + ["absent.org", "WWW.FACEBOOK.COM."]
    packed_records = zone.get_many(queries)
    dict_records = store.get_many(queries)
    for packed_rec, dict_rec in zip(packed_records, dict_records):
        if dict_rec is MISS:
            assert packed_rec is MISS
        else:
            assert packed_rec.name == dict_rec.name


def test_registered_ids_matches_dict_index(zone):
    order = list(zone.registered_domains())
    oracle = {domain: i for i, domain in enumerate(order)}
    queries = ["facebook.com", "EXAMPLE.ORG.", "www.facebook.com",
               "absent.net", "", "x" * 80 + ".com"]
    ids = zone.registered_ids(queries)
    from repro.dns.records import registered_domain
    for name, reg_id in zip(queries, ids):
        expected = oracle.get(registered_domain(name.lower().rstrip(".")), -1)
        assert int(reg_id) == expected


# ----------------------------------------------------------------------
# engine verdicts == offline oracle
# ----------------------------------------------------------------------

def test_engine_matches_offline_oracle(detector, zone):
    engine = QueryEngine(detector, zone)
    served = engine.lookup_batch(QUERIES)
    offline = offline_verdicts(detector, zone, QUERIES)
    assert digest_verdicts(served) == digest_verdicts(offline)
    by_domain = {v.domain: v for v in served}
    assert by_domain["faceb00k.com"].is_squat
    assert by_domain["faceb00k.com"].registered
    assert by_domain["never-seen.xyz"].registered is False
    assert by_domain["facebook.com"].is_squat is False


def test_engine_negcache_transparent(detector, zone):
    cached = QueryEngine(detector, zone,
                         negcache=NegativeVerdictCache(ttl=60.0))
    uncached = QueryEngine(detector, zone)
    for _ in range(3):  # repeats hit the cache on later batches
        assert digest_verdicts(cached.lookup_batch(QUERIES)) == \
            digest_verdicts(uncached.lookup_batch(QUERIES))
    assert cached.stats.negcache_hits > 0


def test_engine_serves_enrichment_columns(detector, zone):
    from repro.enrich.backends import ip_to_u32

    table = EnrichmentTable(list(zone.registered_domains()))
    row = table.row_of("facebook.com")
    table.set_value("a", row, ip_to_u32("93.184.216.34"))
    table.set_value("geo", row, "US")
    table.set_value("mx", row, True)
    table.set_value("whois", row, (2004, "MarkMonitor"))
    enriched = attach_enrichment(zone, table.finalize())

    engine = QueryEngine(detector, enriched)
    served = engine.lookup_batch(QUERIES)
    offline = offline_verdicts(detector, enriched, QUERIES)
    assert digest_verdicts(served) == digest_verdicts(offline)
    verdict = {v.domain: v for v in served}["facebook.com"]
    enr = dict(verdict.enrichment)
    assert enr["a_ip"] == "93.184.216.34"
    assert enr["country"] == "US"
    assert enr["mx_present"] is True
    assert enr["registrar"] == "MarkMonitor"
    assert enr["year"] == 2004


def test_engine_scorer_is_part_of_the_verdict(detector, zone):
    engine = QueryEngine(detector, zone,
                         scorer=lambda name: 0.25 if "facebook" in name
                         else None)
    verdicts = {v.domain: v for v in engine.lookup_batch(QUERIES)}
    assert verdicts["facebook.com"].score == 0.25
    assert verdicts["google.com"].score is None
    assert "0.250000000" in verdict_line(verdicts["facebook.com"])


def test_verdict_pickle_roundtrip(detector, zone):
    served = QueryEngine(detector, zone).lookup_batch(QUERIES)
    assert pickle.loads(pickle.dumps(served)) == served


@functools.lru_cache(maxsize=1)
def _prop_state():
    # hypothesis can't take fixtures: tiny statics built once
    catalog = BrandCatalog()
    catalog.add(Brand(name="facebook", domain="facebook.com"))
    builder = PackedZoneBuilder()
    for name in ZONE_NAMES:
        builder.add_name(name)
    return SquattingDetector(catalog), builder.build()


@given(st.text(alphabet="abco0-.x", max_size=24))
@settings(max_examples=120, deadline=None)
def test_engine_pure_per_name_property(s):
    detector, zone = _prop_state()
    name = s + ".com" if s and "." not in s else s
    served = QueryEngine(detector, zone).lookup_batch([name])
    offline = offline_verdicts(detector, zone, [name])
    assert digest_verdicts(served) == digest_verdicts(offline)


# ----------------------------------------------------------------------
# publisher: atomic generations
# ----------------------------------------------------------------------

def test_publisher_generations_increment(tmp_path, zone):
    publisher = SnapshotPublisher(tmp_path / "pub")
    assert publisher.current() is None
    assert publisher.open_current() is None
    gen1, path1 = publisher.publish(zone)
    gen2, path2 = publisher.publish(zone)
    assert (gen1, gen2) == (1, 2)
    assert path1 != path2 and path1.exists()  # old generation kept on disk
    current = publisher.current()
    assert current == (2, path2)
    live = publisher.open_current()
    assert live.generation == 2
    assert len(live) == len(zone)
    assert (tmp_path / "pub" / "CURRENT").exists()


def test_stamp_generation_zero_is_byte_stable(zone):
    stamped = stamp_generation(zone, 7)
    assert stamped.generation == 7
    assert PackedZone.from_bytes(stamped.to_bytes()).generation == 7
    # un-stamping back to generation 0 restores the original bytes
    assert stamp_generation(stamped, 0).to_bytes() == zone.to_bytes()


# ----------------------------------------------------------------------
# the serving front
# ----------------------------------------------------------------------

def _requests(detector, zone, n=400):
    return synth_requests(
        n, qps=5000.0,
        registered=list(zone.registered_domains()),
        squats=["faceb00k.com", "paypa1.net", "gooogle.com"])


def test_serve_load_serial_matches_oracle(detector, zone):
    requests = _requests(detector, zone)
    verdicts, stats = serve_load(detector, zone, requests,
                                 workers=1, max_batch=16, max_delay=0.002)
    offline = offline_verdicts(detector, zone,
                               [name for _, name in requests])
    assert digest_verdicts(verdicts) == digest_verdicts(offline)
    assert stats.queries == len(requests)
    assert stats.dropped == 0
    assert stats.batches == len(plan_batches(requests, 16, 0.002))
    assert stats.negcache_hits > 0
    assert stats.p99_ms >= stats.p50_ms >= 0.0


def test_serve_load_knobs_never_change_verdicts(detector, zone, tmp_path):
    requests = _requests(detector, zone)
    reference = digest_verdicts(serve_load(
        detector, zone, requests, workers=1, max_batch=1, max_delay=0.0,
        negcache=False)[0])
    for workers, max_batch, negcache in ((1, 64, True), (2, 16, True),
                                         (2, 64, False)):
        verdicts, stats = serve_load(detector, zone, requests,
                                     workers=workers, max_batch=max_batch,
                                     max_delay=0.002, negcache=negcache)
        assert digest_verdicts(verdicts) == reference, \
            (workers, max_batch, negcache)
        assert stats.dropped == 0


def test_serve_load_scorer_requires_serial(detector, zone):
    with pytest.raises(ValueError, match="workers=1"):
        serve_load(detector, zone, [(0.0, "a.com")], workers=2,
                   scorer=lambda name: None)


@pytest.mark.parametrize("workers", [1, 2])
def test_serve_load_hot_reload(detector, zone, tmp_path, workers):
    publisher = SnapshotPublisher(tmp_path / "pub")
    _gen, path = publisher.publish(zone)
    gen1_zone = PackedZone.load(path)
    requests = _requests(detector, zone)
    n_batches = len(plan_batches(requests, 16, 0.002))
    assert n_batches >= 4
    swap_at = n_batches // 2

    def republish(index):
        if index == swap_at:
            publisher.publish(zone)

    verdicts, stats = serve_load(detector, gen1_zone, requests,
                                 workers=workers, max_batch=16,
                                 max_delay=0.002, publisher=publisher,
                                 on_dispatch=republish)
    assert stats.dropped == 0
    assert stats.generation_swaps == 1
    assert set(stats.served_by_generation) == {1, 2}
    # byte-identity holds per generation against that generation's zone
    gen2_zone = publisher.open_current()
    for generation, gen_zone in ((1, gen1_zone), (2, gen2_zone)):
        group = [v for v in verdicts if v.generation == generation]
        expected = offline_verdicts(detector, gen_zone,
                                    [v.domain for v in group],
                                    generation=generation)
        assert digest_verdicts(group) == digest_verdicts(expected)


# ----------------------------------------------------------------------
# load generation
# ----------------------------------------------------------------------

def test_synth_requests_deterministic_and_ordered():
    first = synth_requests(200, qps=1000.0, registered=["a.com", "b.com"])
    second = synth_requests(200, qps=1000.0, registered=["a.com", "b.com"])
    assert first == second
    arrivals = [at for at, _ in first]
    assert arrivals == sorted(arrivals)
    assert len(first) == 200
    # the bounded pool guarantees repeats for the negcache to chew on
    assert len({name for _, name in first}) < 200


def test_synth_requests_validates():
    with pytest.raises(ValueError):
        synth_requests(0, qps=10.0)
    with pytest.raises(ValueError):
        synth_requests(10, qps=0.0)


def test_percentile_nearest_rank():
    assert percentile([], 99) == 0.0
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 50) == 50.0
    assert percentile(values, 99) == 99.0
    assert percentile(values, 100) == 100.0
    assert percentile([7.0], 99) == 7.0
