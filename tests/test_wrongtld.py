"""WrongTLD squatting model."""

import pytest

from repro.squatting.wrongtld import WrongTLDModel


@pytest.fixture(scope="module")
def model():
    return WrongTLDModel()


def test_generates_paper_example(model):
    assert "facebook.audi" in model.generate("facebook.com")


def test_never_generates_the_original(model):
    assert "facebook.com" not in model.generate("facebook.com")


def test_detects_wrong_tld(model):
    assert model.matches("facebook.audi", "facebook.com") == "audi"
    assert model.matches("facebook.pw", "facebook.com") == "pw"


def test_rejects_same_tld(model):
    assert model.matches("facebook.com", "facebook.com") is None


def test_rejects_different_label(model):
    assert model.matches("faceb00k.audi", "facebook.com") is None


def test_handles_multilabel_suffixes(model):
    # santander.co.uk vs santander.com: both directions
    assert model.matches("santander.com", "santander.co.uk") == "com"
    assert model.matches("santander.co.uk", "santander.com") == "co.uk"


def test_custom_tld_inventory():
    small = WrongTLDModel(tlds=("com", "net"))
    assert small.generate("brand.com") == {"brand.net"}


def test_generate_detect_roundtrip(model):
    for domain in sorted(model.generate("uber.com"))[:80]:
        assert model.matches(domain, "uber.com") is not None, domain
