"""CLI commands, driven through main()."""

import pytest

from repro.cli import build_parser, main
from repro.dns.activedns import write_snapshot
from repro.dns.records import DNSRecord


class TestGen:
    def test_generates_candidates(self, capsys):
        assert main(["gen", "facebook.com", "--limit", "50"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 50
        assert all("\t" in line for line in lines)

    def test_type_filter(self, capsys):
        main(["gen", "facebook.com", "--types", "bits", "--limit", "20"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(line.endswith("\tbits") for line in lines)

    def test_combo_flag(self, capsys):
        main(["gen", "uber.com", "--types", "combo", "--combo", "--limit", "10"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all("combo" in line for line in lines)


class TestClassify:
    def test_known_squats(self, capsys):
        code = main(["classify", "faceb00k.pw", "goog1e.nl",
                     "--brands", "facebook.com", "google.com"])
        assert code == 0
        out = capsys.readouterr().out
        assert "faceb00k.pw\tfacebook\thomograph" in out
        assert "goog1e.nl\tgoogle\thomograph" in out

    def test_clean_domain_exit_code(self, capsys):
        code = main(["classify", "totally-unrelated-site.com",
                     "--brands", "facebook.com"])
        assert code == 1
        assert "\t-\t-" in capsys.readouterr().out

    def test_sector_catalog_flag(self, capsys):
        code = main(["classify", "irs-refund.com", "--sectors", "government"])
        assert code == 0
        assert "irs-refund.com\tirs\tcombo" in capsys.readouterr().out

    def test_sectors_combine_with_brands(self, capsys):
        code = main(["classify", "irs-refund.com", "faceb00k.pw",
                     "--brands", "facebook.com", "--sectors", "government"])
        assert code == 0
        out = capsys.readouterr().out
        assert "irs-refund.com\tirs" in out
        assert "faceb00k.pw\tfacebook" in out


class TestScan:
    def test_scan_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "snap.tsv"
        write_snapshot([
            DNSRecord(name="faceb00k.pw", ip="1.1.1.1"),
            DNSRecord(name="facebook-login.tk", ip="1.1.1.2"),
            DNSRecord(name="clean.org", ip="1.1.1.3"),
        ], snapshot)
        out_file = tmp_path / "matches.tsv"
        code = main(["scan", str(snapshot), "--brands", "facebook.com",
                     "--out", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "found 2 squatting domains" in out
        written = out_file.read_text().strip().splitlines()
        assert len(written) == 2


class TestWorld:
    def test_world_dump(self, tmp_path, capsys):
        out = tmp_path / "world.tsv"
        code = main(["world", str(out), "--organic", "30", "--squats", "40",
                     "--phish", "4"])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
        assert len(out.read_text().strip().splitlines()) > 70


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.slow
def test_pipeline_command(capsys):
    code = main(["pipeline", "--squats", "120"])
    assert code == 0
    out = capsys.readouterr().out
    assert "verified phishing" in out
    assert "crawl health" not in out     # no fault plan, no health report


def test_pipeline_command_rejects_bad_fault_flags(capsys):
    assert main(["pipeline", "--fault-rate", "1.5"]) == 2
    assert "--fault-rate" in capsys.readouterr().err
    assert main(["pipeline", "--max-retries", "-1"]) == 2
    assert "--max-retries" in capsys.readouterr().err


@pytest.mark.slow
def test_pipeline_command_with_faults(capsys):
    code = main(["pipeline", "--squats", "120", "--fault-rate", "0.2",
                 "--fault-seed", "7", "--max-retries", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "verified phishing" in out
    assert "crawl health" in out
    assert "injected faults:" in out
    assert "dead letters:" in out


class TestVerifyFlag:
    @pytest.fixture
    def packed_path(self, tmp_path):
        path = tmp_path / "world.pzon"
        assert main(["world", str(path), "--packed", "--organic", "200",
                     "--squats", "60"]) == 0
        return path

    def test_scan_verify_accepts_intact_snapshot(self, packed_path, capsys):
        assert main(["scan", str(packed_path), "--verify"]) == 0
        assert "squatting domains" in capsys.readouterr().out

    def test_scan_verify_rejects_corrupt_snapshot(self, packed_path,
                                                  capsys):
        data = bytearray(packed_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        packed_path.write_bytes(bytes(data))
        assert main(["scan", str(packed_path), "--verify"]) == 2
        assert "failed verification" in capsys.readouterr().err

    def test_query_verify_rejects_corrupt_snapshot(self, packed_path,
                                                   capsys):
        data = bytearray(packed_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        packed_path.write_bytes(bytes(data))
        assert main(["query", str(packed_path), "--verify",
                     "anything.com"]) == 2
        assert "failed verification" in capsys.readouterr().err

    def test_stream_verify_happy_path(self, capsys):
        code = main(["stream", "--events", "400", "--base-events", "150",
                     "--segment-events", "80", "--verify"])
        assert code == 0
        assert "streamed" in capsys.readouterr().out


class TestLifecycle:
    ARGS = ["lifecycle", "--snapshots", "3", "--base-events", "120",
            "--events-per-snapshot", "60"]

    def test_report_text_mode(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "snapshot-pair diffs" in out
        assert "squat lifecycle by family" in out
        assert "diff chain:" in out

    def test_oracle_flag_cross_checks(self, capsys):
        assert main(self.ARGS + ["--oracle"]) == 0
        assert "== dict-set oracle" in capsys.readouterr().out

    def test_json_mode_round_trips(self, capsys):
        import json

        assert main(self.ARGS + ["--json", "--workers", "2"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["snapshots"] == 3
        assert len(report["diff_digests"]) == 2
        assert report["chain_digest"]
        assert "families" in report

    def test_store_caches_snapshots(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "store")
        assert main(self.ARGS + ["--store", store, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(self.ARGS + ["--store", store, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert cold["chain_digest"] == warm["chain_digest"]
        assert warm["series_stats"]["cached_snapshots"] == 3
