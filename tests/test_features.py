"""Feature extraction and embedding."""

import numpy as np
import pytest

from repro.features.embedding import EmbeddingConfig, FeatureEmbedder
from repro.features.extraction import FeatureExtractor, PageFeatures
from repro.web.html import document, el, parse_html
from repro.web.screenshot import render_page


def login_page(brand="paypal", hide_brand_in_image=False):
    header = (
        el("img", data_embedded_text=brand, height="48")
        if hide_brand_in_image else el("h1", brand.capitalize())
    )
    return document(
        "Sign In",
        header,
        el("p", "Please verify your identity."),
        el("form",
           el("input", type="text", placeholder="email or username"),
           el("input", type="password", placeholder="password"),
           el("button", "Sign In")),
        el("script", "var a = 1;"),
    )


@pytest.fixture(scope="module")
def extractor():
    # the pipeline always seeds the spell checker with brand names (§5.2)
    return FeatureExtractor(extra_lexicon=["paypal", "google", "identity"])


class TestExtraction:
    def test_form_family(self, extractor):
        html = login_page().to_html()
        features = extractor.extract(html)
        assert features.form_count == 1
        assert features.password_input_count == 1
        assert "password" in features.form_tokens
        assert "username" in features.form_tokens

    def test_lexical_family(self, extractor):
        features = extractor.extract(login_page().to_html())
        assert "paypal" in features.lexical_tokens
        assert "verify" in features.lexical_tokens

    def test_ocr_family_recovers_image_text(self, extractor):
        """The paper's central mechanism: OCR sees what HTML hides."""
        page = login_page(hide_brand_in_image=True)
        shot = render_page(parse_html(page.to_html()))
        features = extractor.extract(page.to_html(), shot.pixels)
        assert "paypal" not in features.lexical_tokens
        assert "paypal" in features.ocr_tokens

    def test_ocr_disabled(self):
        extractor = FeatureExtractor(use_ocr=False)
        page = login_page(hide_brand_in_image=True)
        shot = render_page(parse_html(page.to_html()))
        features = extractor.extract(page.to_html(), shot.pixels)
        assert features.ocr_tokens == []

    def test_script_indicators_attached(self, extractor):
        features = extractor.extract(login_page().to_html())
        assert features.script_count == 1
        assert features.js_indicators is not None

    def test_stopwords_removed(self, extractor):
        features = extractor.extract(login_page().to_html())
        assert "your" not in features.lexical_tokens


class TestEmbedding:
    def make_pages(self):
        positive = PageFeatures(
            ocr_tokens=["paypal", "password", "login"],
            lexical_tokens=["verify", "account"],
            form_tokens=["password", "username"],
            form_count=1, password_input_count=1,
        )
        negative = PageFeatures(
            ocr_tokens=["weather", "report"],
            lexical_tokens=["news", "daily"],
            form_tokens=[],
            form_count=0,
        )
        return [positive, negative] * 3

    def test_fit_grows_vocabulary(self):
        embedder = FeatureEmbedder(brand_names=["paypal", "google"])
        base = len(embedder.vocabulary)
        embedder.fit(self.make_pages())
        assert len(embedder.vocabulary) > base

    def test_dimension_formula(self):
        embedder = FeatureEmbedder(brand_names=["paypal"]).fit(self.make_pages())
        vector = embedder.transform_one(self.make_pages()[0])
        assert vector.shape == (embedder.dimension,)

    def test_channel_counts_are_separate(self):
        embedder = FeatureEmbedder(brand_names=["paypal"]).fit(self.make_pages())
        vector = embedder.transform_one(PageFeatures(
            ocr_tokens=["paypal"], lexical_tokens=[], form_tokens=["paypal"],
        ))
        vocab_size = len(embedder.vocabulary)
        index = embedder.vocabulary.index("paypal")
        assert vector[index] == 1.0                      # OCR channel
        assert vector[vocab_size + index] == 0.0          # lexical channel
        assert vector[2 * vocab_size + index] == 1.0      # form channel

    def test_ablation_channels_shrink_dimension(self):
        pages = self.make_pages()
        full = FeatureEmbedder(["paypal"], EmbeddingConfig()).fit(pages)
        no_ocr = FeatureEmbedder(
            ["paypal"], EmbeddingConfig(use_ocr=False)).fit(pages)
        assert no_ocr.dimension < full.dimension

    def test_numeric_features_appended(self):
        pages = self.make_pages()
        embedder = FeatureEmbedder(["paypal"]).fit(pages)
        vector = embedder.transform_one(PageFeatures(form_count=2,
                                                     password_input_count=1,
                                                     script_count=4))
        assert list(vector[-3:]) == [2.0, 1.0, 4.0]

    def test_transform_before_fit_raises(self):
        embedder = FeatureEmbedder(["paypal"])
        with pytest.raises(RuntimeError):
            embedder.transform_one(PageFeatures())

    def test_batch_transform_shape(self):
        pages = self.make_pages()
        embedder = FeatureEmbedder(["paypal"]).fit(pages)
        matrix = embedder.transform(pages)
        assert matrix.shape == (len(pages), embedder.dimension)

    def test_empty_batch(self):
        embedder = FeatureEmbedder(["paypal"]).fit(self.make_pages())
        assert embedder.transform([]).shape == (0, embedder.dimension)

    def test_batch_transform_matches_reference(self):
        # the scatter-add matrix build must byte-match the pre-vectorization
        # per-page loop kept behind legacy=True
        pages = self.make_pages() + [PageFeatures()]
        fast = FeatureEmbedder(["paypal"]).fit(pages)
        slow = FeatureEmbedder(["paypal"], legacy=True).fit(pages)
        assert np.array_equal(fast.transform(pages), slow.transform(pages))
        for page in pages:
            assert np.array_equal(fast.transform_one(page),
                                  slow.transform_one(page))

    def test_feature_names_match_dimension(self):
        embedder = FeatureEmbedder(["paypal"]).fit(self.make_pages())
        names = embedder.feature_names()
        assert len(names) == embedder.dimension
        assert names[0].startswith("ocr:")
        assert names[-1] == "numeric:script_count"

    def test_feature_names_respect_channel_ablation(self):
        config = EmbeddingConfig(use_ocr=False, use_numeric=False)
        embedder = FeatureEmbedder(["paypal"], config).fit(self.make_pages())
        names = embedder.feature_names()
        assert len(names) == embedder.dimension
        assert all(not n.startswith("ocr:") for n in names)
        assert all(not n.startswith("numeric:") for n in names)
