"""Crowdsourced verification queue."""

import numpy as np
import pytest

from repro.core.review import Annotator, ReviewQueue, default_crowd


def perfect_crowd(size=5):
    return [Annotator(name=f"p{i}", sensitivity=1.0, specificity=1.0)
            for i in range(size)]


class TestQueueMechanics:
    def test_requires_annotators(self):
        with pytest.raises(ValueError):
            ReviewQueue([], votes_per_item=3)

    def test_requires_positive_votes(self):
        with pytest.raises(ValueError):
            ReviewQueue(perfect_crowd(), votes_per_item=0)

    def test_votes_capped_by_crowd_size(self):
        queue = ReviewQueue(perfect_crowd(2), votes_per_item=5)
        assert queue.votes_per_item == 2

    def test_each_item_gets_exactly_k_votes(self):
        queue = ReviewQueue(perfect_crowd(), votes_per_item=3)
        for i in range(4):
            queue.submit(f"d{i}.com", "brand", truth=bool(i % 2))
        stats = queue.process()
        assert stats.votes_cast == 12
        assert all(len(item.votes) == 3 for item in queue.items)

    def test_reprocess_does_not_revote(self):
        queue = ReviewQueue(perfect_crowd(), votes_per_item=3)
        queue.submit("a.com", "brand", truth=True)
        queue.process()
        stats = queue.process()
        assert stats.votes_cast == 0

    def test_verdict_before_votes_raises(self):
        queue = ReviewQueue(perfect_crowd())
        item = queue.submit("a.com", "brand", truth=True)
        with pytest.raises(RuntimeError):
            _ = item.verdict


class TestJudgement:
    def test_perfect_crowd_is_always_right(self):
        queue = ReviewQueue(perfect_crowd(), votes_per_item=3)
        for i in range(30):
            queue.submit(f"d{i}.com", "brand", truth=bool(i % 3 == 0))
        stats = queue.process()
        assert stats.accuracy == 1.0
        assert stats.confirmed == 10

    def test_majority_vote_beats_single_annotator(self):
        """The crowdsourcing pay-off the paper banks on."""
        def run(votes):
            queue = ReviewQueue(default_crowd(size=15, seed=3),
                                votes_per_item=votes, seed=5)
            rng = np.random.default_rng(11)
            for i in range(400):
                queue.submit(f"d{i}.com", "b", truth=bool(rng.random() < 0.5))
            return queue.process().accuracy

        assert run(5) > run(1)

    def test_tie_breaks_toward_phishing(self):
        queue = ReviewQueue(perfect_crowd(2), votes_per_item=2)
        item = queue.submit("a.com", "brand", truth=True)
        item.votes = [True, False]
        assert item.verdict is True

    def test_confirmed_domains_listing(self):
        queue = ReviewQueue(perfect_crowd(), votes_per_item=3)
        queue.submit("phish.com", "b", truth=True)
        queue.submit("benign.com", "b", truth=False)
        queue.process()
        assert queue.confirmed_domains() == ["phish.com"]


def test_default_crowd_is_heterogeneous():
    crowd = default_crowd(size=8)
    assert len(crowd) == 8
    assert len({round(a.sensitivity, 4) for a in crowd}) > 1
    assert all(0.70 <= a.specificity <= 0.99 for a in crowd)
