"""World distribution shapes at a statistically meaningful scale.

These tests build one medium world (module-scoped) and check the generative
distributions against the paper's reported rates, independent of the
pipeline.
"""

from collections import Counter

import pytest

from repro.phishworld.world import WorldConfig, build_world
from repro.squatting.types import SquatType
from repro.web.server import SiteBehavior


@pytest.fixture(scope="module")
def medium_world():
    return build_world(WorldConfig(
        seed=7,
        n_organic_domains=500,
        n_squat_domains=1500,
        n_phish_domains=80,
        phishtank_reports=400,
    ))


class TestSquatDistribution:
    def test_type_mix(self, medium_world):
        counts = Counter(t for _, t in medium_world.squat_truth.values())
        total = sum(counts.values())
        assert 0.45 < counts[SquatType.COMBO] / total < 0.68     # ~56%
        assert 0.15 < counts[SquatType.TYPO] / total < 0.35      # ~25%
        assert counts[SquatType.HOMOGRAPH] / total < 0.15
        assert counts[SquatType.BITS] / total < 0.15

    def test_heavy_brands_attract_most_squats(self, medium_world):
        counts = Counter(brand for brand, _ in medium_world.squat_truth.values())
        top5 = [brand for brand, _ in counts.most_common(5)]
        assert "vice" in top5

    def test_phish_targets_skewed_to_google(self, medium_world):
        counts = Counter(r.brand for r in medium_world.phishing_sites)
        assert counts["google"] == max(counts.values())


class TestHostingBehaviour:
    def test_redirect_buckets(self, medium_world):
        labels = Counter(
            medium_world.label_of(d) for d in medium_world.squat_truth
        )
        live = sum(v for k, v in labels.items() if k not in ("squat-dead",))
        redirecting = (labels["squat-defensive"] + labels["squat-market"]
                       + labels["squat-other-redirect"])
        assert 0.05 < redirecting / live < 0.30    # paper: ~13% of live

    def test_phishing_cloaking_split(self, medium_world):
        cloaking = Counter(r.evasion.cloaking for r in medium_world.phishing_sites)
        total = sum(cloaking.values())
        # §6.1: 590/1175 both, 318 mobile-only, 267 web-only
        assert cloaking["both"] / total > 0.35
        assert cloaking["mobile"] > 0
        assert cloaking["web"] > 0

    def test_phishing_lifetimes(self, medium_world):
        full_month = sum(
            1 for r in medium_world.phishing_sites
            if r.lifetime_snapshots >= medium_world.config.snapshots
        )
        assert full_month / len(medium_world.phishing_sites) > 0.65  # ~80%


class TestFeedHosting:
    def test_report_domains_resolve(self, medium_world):
        reports = medium_world.phishtank.generate()
        live = sum(1 for r in reports
                   if medium_world.host.get(r.domain) is not None)
        assert live / len(reports) > 0.9

    def test_still_phishing_pages_serve_phishing(self, medium_world):
        reports = [r for r in medium_world.phishtank.generate()
                   if r.still_phishing]
        labelled = Counter(medium_world.label_of(r.domain) for r in reports)
        assert labelled["phishing-reported"] > 0.9 * len(reports)

    def test_alexa_rank_mix(self, medium_world):
        domains = [r.domain for r in medium_world.phishtank.generate()]
        histogram = medium_world.alexa.histogram(domains)
        total = sum(histogram.values())
        assert 0.6 < histogram["(1000000+"] / total < 0.8     # Fig 6: 70%


class TestBlacklistIngestion:
    def test_squat_phish_mostly_unlisted(self, medium_world):
        results = medium_world.blacklists.check_all(
            medium_world.phishing_domains(), on_day=30)
        undetected = sum(1 for r in results if not r.detected)
        assert undetected / len(results) > 0.75

    def test_reported_phish_all_on_phishtank(self, medium_world):
        reports = medium_world.phishtank.generate()[:100]
        hits = sum(
            1 for r in reports
            if medium_world.blacklists.phishtank.contains(r.domain, on_day=0)
        )
        assert hits > 90
