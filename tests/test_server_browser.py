"""Hosted sites, the web host, and the headless browser."""

import pytest

from repro.web.browser import Browser, document_to_html
from repro.web.html import document, el, parse_html
from repro.web.http import MOBILE_UA, WEB_UA, Request, Response
from repro.web.server import HostedSite, SiteBehavior, WebHost


def static_site(domain, page, label="benign"):
    return HostedSite(
        domain=domain,
        behavior=SiteBehavior.CONTENT,
        provider=lambda ua, snap: page,
        label=label,
    )


@pytest.fixture()
def host():
    host = WebHost()
    host.register(static_site("example.com", document("Example", el("p", "hello"))))
    host.register(HostedSite(domain="dead.com", behavior=SiteBehavior.DEAD))
    host.register(HostedSite(
        domain="hop.com", behavior=SiteBehavior.REDIRECT,
        redirect_to="http://example.com/",
    ))
    return host


class TestHttpModels:
    def test_request_domain_parsing(self):
        assert Request(url="http://Example.COM/path?q=1").domain == "example.com"
        assert Request(url="https://a.b.c/").domain == "a.b.c"
        assert Request(url="bare.com").domain == "bare.com"

    def test_response_redirect_properties(self):
        response = Response(url="x", status=302, headers={"Location": "http://y/"})
        assert response.is_redirect
        assert response.location == "http://y/"
        assert not response.ok

    def test_profiles(self):
        assert not WEB_UA.is_mobile
        assert MOBILE_UA.is_mobile
        assert "iPhone" in MOBILE_UA.header


class TestWebHost:
    def test_serves_content(self, host):
        response = host.serve(Request(url="http://example.com/"))
        assert response.ok
        assert "hello" in response.body

    def test_unknown_domain_is_none(self, host):
        assert host.serve(Request(url="http://nowhere.com/")) is None

    def test_dead_site_is_none(self, host):
        assert host.serve(Request(url="http://dead.com/")) is None

    def test_redirect_response(self, host):
        response = host.serve(Request(url="http://hop.com/"))
        assert response.is_redirect
        assert response.location == "http://example.com/"


class TestBrowser:
    def test_visit_renders_page(self, host):
        capture = Browser(host, WEB_UA).visit("http://example.com/")
        assert capture is not None
        assert capture.final_url == "http://example.com/"
        assert "hello" in capture.html
        assert capture.screenshot.pixels.size > 0
        assert not capture.was_redirected

    def test_follows_redirects(self, host):
        capture = Browser(host, WEB_UA).visit("http://hop.com/")
        assert capture is not None
        assert capture.final_domain == "example.com"
        assert capture.redirect_chain == ("http://example.com/",)

    def test_dead_site_returns_none(self, host):
        assert Browser(host, WEB_UA).visit("http://dead.com/") is None

    def test_redirect_loop_returns_none(self):
        host = WebHost()
        host.register(HostedSite(domain="a.com", behavior=SiteBehavior.REDIRECT,
                                 redirect_to="http://b.com/"))
        host.register(HostedSite(domain="b.com", behavior=SiteBehavior.REDIRECT,
                                 redirect_to="http://a.com/"))
        assert Browser(host, WEB_UA).visit("http://a.com/") is None

    def test_cloaking_by_user_agent(self):
        host = WebHost()
        page = document("Mobile only", el("p", "mobile content"))
        host.register(HostedSite(
            domain="cloaked.com", behavior=SiteBehavior.CONTENT,
            provider=lambda ua, snap: page if ua.is_mobile else None,
        ))
        assert Browser(host, WEB_UA).visit("http://cloaked.com/") is None
        capture = Browser(host, MOBILE_UA).visit("http://cloaked.com/")
        assert capture is not None

    def test_snapshot_dependent_content(self):
        host = WebHost()
        page = document("Ephemeral", el("p", "alive"))
        host.register(HostedSite(
            domain="shortlived.com", behavior=SiteBehavior.CONTENT,
            provider=lambda ua, snap: page if snap < 2 else None,
        ))
        browser = Browser(host, WEB_UA)
        assert browser.visit("http://shortlived.com/", snapshot=1) is not None
        assert browser.visit("http://shortlived.com/", snapshot=2) is None

    def test_js_form_injection_is_executed(self):
        host = WebHost()
        page = document(
            "Inject",
            el("p", "shell"),
            el("script",
               "if(!window.adblock){document.body.innerHTML += "
               "'<form><input type=\"password\" placeholder=\"password\">"
               "</form>';}"),
        )
        host.register(static_site("inject.com", page))
        capture = Browser(host, WEB_UA).visit("http://inject.com/")
        tree = parse_html(capture.html)
        inputs = tree.find_all("input")
        assert any(i.get("type") == "password" for i in inputs)


def test_document_to_html_unwraps_parse_root():
    tree = parse_html("<html><body><p>x</p></body></html>")
    markup = document_to_html(tree)
    assert markup.startswith("<html>")
