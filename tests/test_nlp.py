"""Tokenizer, stopwords, vocabulary."""

import pytest

from repro.nlp.stopwords import STOPWORDS, remove_stopwords
from repro.nlp.tokenizer import tokenize, word_frequencies
from repro.nlp.vocab import Vocabulary


class TestTokenizer:
    def test_lowercases(self):
        assert tokenize("PayPal Login") == ["paypal", "login"]

    def test_splits_punctuation(self):
        assert tokenize("enter password!") == ["enter", "password"]

    def test_hyphen_compounds_emit_whole_and_parts(self):
        tokens = tokenize("go-uberfreight rocks")
        assert "go-uberfreight" in tokens
        assert "uberfreight" in tokens
        assert "go" in tokens

    def test_min_length_filter(self):
        assert "a" not in tokenize("a big word")
        assert tokenize("xy z", min_length=2) == ["xy"]

    def test_digits_kept(self):
        assert "365" in tokenize("office 365 login")

    def test_empty(self):
        assert tokenize("") == []

    def test_frequencies(self):
        freq = word_frequencies(tokenize("pay pay pal"))
        assert freq == {"pay": 2, "pal": 1}


class TestStopwords:
    def test_removes_common_words(self):
        tokens = remove_stopwords(["please", "enter", "your", "password"])
        assert "your" not in tokens
        assert "password" in tokens

    def test_stopword_list_sanity(self):
        assert "the" in STOPWORDS
        assert "password" not in STOPWORDS


class TestVocabulary:
    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("password")
        second = vocab.add("password")
        assert first == second
        assert len(vocab) == 1

    def test_index_lookup(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.index("b") == 1
        assert vocab.index("missing") is None
        assert "a" in vocab

    def test_words_preserve_order(self):
        vocab = Vocabulary(["z", "a", "m"])
        assert vocab.words() == ["z", "a", "m"]

    def test_fit_frequent_caps_and_thresholds(self):
        vocab = Vocabulary(["seed"])
        docs = [["hot"] * 5, ["hot", "warm", "warm"], ["cold"]]
        added = vocab.fit_frequent(docs, max_words=3, min_count=2)
        assert added == 2
        assert "hot" in vocab and "warm" in vocab
        assert "cold" not in vocab  # below min_count

    def test_fit_frequent_respects_existing(self):
        vocab = Vocabulary(["hot"])
        added = vocab.fit_frequent([["hot"] * 9], max_words=5, min_count=1)
        assert added == 0
