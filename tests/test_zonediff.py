"""The vectorized snapshot-diff kernel vs its dict-set oracle.

The load-bearing invariant (DESIGN.md §15): for any two packed
snapshots, :func:`repro.dns.zonediff.diff_packed` produces a DiffTable
byte-identical (digest equality) to the serial dict-set oracle
:func:`repro.dns.zonediff.diff_serial`; and for *evolution pairs*
(B never re-adds a name A lost — re-adds live in the delta layer,
DESIGN.md §14), applying the table to A reconstructs B byte for byte.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.packedzone import pack_zone
from repro.dns.zone import ZoneStore
from repro.dns.zonediff import (
    ADDED,
    CHANGED,
    REMOVED,
    RETAINED,
    STATUS_NAMES,
    DiffTable,
    apply_diff,
    diff_packed,
    diff_serial,
    diff_zones,
)


def packed(rows):
    store = ZoneStore()
    for name, ip in rows:
        store.add_name(name, ip=ip)
    return pack_zone(store)


A_ROWS = [
    ("kept.com", "1.1.1.1"),
    ("www.kept.com", "1.1.1.2"),
    ("gone.net", "2.2.2.2"),
    ("moved.org", "3.3.3.3"),
    ("shrunk.pw", "4.4.4.4"),
    ("sub.shrunk.pw", "4.4.4.5"),
]

B_ROWS = [
    ("kept.com", "1.1.1.1"),
    ("www.kept.com", "1.1.1.2"),
    ("moved.org", "9.9.9.9"),          # IP rewrite -> changed
    ("shrunk.pw", "4.4.4.4"),          # lost its subdomain -> changed
    ("fresh.xyz", "5.5.5.5"),          # -> added
]


def test_statuses_match_hand_classification():
    diff = diff_packed(packed(A_ROWS), packed(B_ROWS))
    by_status = {STATUS_NAMES[code]: set(diff.domains_with_status(code))
                 for code in (RETAINED, CHANGED, ADDED, REMOVED)}
    assert by_status["retained"] == {"kept.com"}
    assert by_status["changed"] == {"moved.org", "shrunk.pw"}
    assert by_status["removed"] == {"gone.net"}
    assert by_status["added"] == {"fresh.xyz"}


def test_counts_cover_domains_and_record_ops():
    diff = diff_packed(packed(A_ROWS), packed(B_ROWS))
    counts = diff.counts()
    assert counts["retained"] == 1 and counts["changed"] == 2
    assert counts["removed"] == 1 and counts["added"] == 1
    assert counts["records_removed"] == 2     # gone.net, sub.shrunk.pw
    assert counts["records_changed"] == 1     # moved.org's IP
    assert counts["records_added"] == 1       # fresh.xyz
    assert diff.n_domains == sum(
        counts[STATUS_NAMES[code]]
        for code in (RETAINED, CHANGED, ADDED, REMOVED))


def test_kernel_matches_oracle_digest():
    zone_a, zone_b = packed(A_ROWS), packed(B_ROWS)
    assert diff_packed(zone_a, zone_b).digest == \
        diff_serial(zone_a, zone_b).digest


def test_empty_and_identical_edge_cases():
    empty, full = packed([]), packed(A_ROWS)
    for zone_a, zone_b in ((empty, empty), (empty, full),
                           (full, empty), (full, full)):
        kernel = diff_packed(zone_a, zone_b)
        assert kernel.digest == diff_serial(zone_a, zone_b).digest
    same = diff_packed(full, packed(A_ROWS))
    assert {name for name, _status in same.domains()} == \
        set(same.domains_with_status(RETAINED))


def test_diff_is_direction_sensitive():
    zone_a, zone_b = packed(A_ROWS), packed(B_ROWS)
    forward = diff_packed(zone_a, zone_b)
    backward = diff_packed(zone_b, zone_a)
    assert forward.digest != backward.digest
    assert set(forward.domains_with_status(ADDED)) == \
        set(backward.domains_with_status(REMOVED))


def test_diff_zones_dispatches_on_format():
    zone_a, zone_b = packed(A_ROWS), packed(B_ROWS)
    store_a = ZoneStore()
    for name, ip in A_ROWS:
        store_a.add_name(name, ip=ip)
    assert diff_zones(zone_a, zone_b).digest == \
        diff_zones(store_a, zone_b).digest


def test_extra_ip_rows_compare_by_full_ip_string():
    # non-IPv4 addresses live in the extra-IP sidecar with a zero u32
    # column — the whole-column compare sees both sides equal, so the
    # kernel must recheck those rows against the decoded strings
    store_a, store_b = ZoneStore(), ZoneStore()
    for store, v6 in ((store_a, "2001:db8::1"), (store_b, "2001:db8::2")):
        store.add_name("dual.com", ip=v6)
        store.add_name("plain.net", ip="1.2.3.4")
    zone_a, zone_b = pack_zone(store_a), pack_zone(store_b)
    kernel = diff_packed(zone_a, zone_b)
    assert set(kernel.domains_with_status(CHANGED)) == {"dual.com"}
    assert set(kernel.domains_with_status(RETAINED)) == {"plain.net"}
    assert kernel.digest == diff_serial(zone_a, zone_b).digest


def test_apply_diff_reconstructs_b():
    zone_a, zone_b = packed(A_ROWS), packed(B_ROWS)
    diff = diff_packed(zone_a, zone_b)
    assert apply_diff(zone_a, diff).to_bytes() == zone_b.to_bytes()


def test_difftable_from_rows_roundtrip():
    table = DiffTable.from_rows(
        [("a.com", RETAINED), ("b.net", REMOVED)],
        removed_names=["b.net"], changed_records=[], added_records=[])
    assert table.n_domains == 2
    assert table.domain_at(0) == "a.com"
    assert list(table.domains()) == [("a.com", RETAINED), ("b.net", REMOVED)]
    assert table.status.dtype == np.uint8


# ----------------------------------------------------------------------
# Hypothesis: the patch property over random evolution pairs
# ----------------------------------------------------------------------

POOL = ["a.com", "www.a.com", "b.net", "login.b.net", "c.org",
        "d.pw", "m.d.pw", "e.xyz", "f.top", "g.site"]
IPS = ["10.0.0.1", "10.0.0.2", "172.16.0.9", "192.0.2.77"]


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_patch_reconstructs_b_byte_identically(data):
    """For random evolution pairs (B never re-adds a removed name),
    apply_diff(A, diff(A, B)) == B, pack digest equality — and the
    kernel and oracle agree on the diff itself."""
    a_idx = data.draw(st.lists(
        st.integers(min_value=0, max_value=len(POOL) - 1),
        min_size=0, max_size=len(POOL), unique=True))
    a_rows = [(POOL[i], IPS[data.draw(st.integers(0, len(IPS) - 1))])
              for i in a_idx]
    removed = {name for name, _ip in a_rows
               if data.draw(st.booleans())}
    rewritten = {name: IPS[data.draw(st.integers(0, len(IPS) - 1))]
                 for name, _ip in a_rows
                 if name not in removed and data.draw(st.booleans())}
    # additions come from outside A, so nothing removed is ever re-added
    outside = [name for name in POOL if name not in {n for n, _ in a_rows}]
    added = [(name, IPS[data.draw(st.integers(0, len(IPS) - 1))])
             for name in outside if data.draw(st.booleans())]

    b_rows = [(name, rewritten.get(name, ip)) for name, ip in a_rows
              if name not in removed] + added
    zone_a, zone_b = packed(a_rows), packed(b_rows)

    kernel = diff_packed(zone_a, zone_b)
    assert kernel.digest == diff_serial(zone_a, zone_b).digest
    patched = apply_diff(zone_a, kernel)
    assert patched.to_bytes() == zone_b.to_bytes()
    assert patched.content_digest == zone_b.content_digest
