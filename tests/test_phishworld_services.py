"""Geoip, whois, marketplaces, blacklists."""

import numpy as np
import pytest

from repro.phishworld.blacklists import Blacklist, BlacklistEcosystem, VirusTotalAggregator
from repro.phishworld.geoip import GeoIPRegistry
from repro.phishworld.marketplace import (
    MARKETPLACE_DOMAINS,
    classify_redirect,
    is_marketplace,
)
from repro.phishworld.whois import WhoisRegistry


class TestGeoIP:
    @pytest.fixture()
    def registry(self):
        return GeoIPRegistry(np.random.default_rng(7))

    def test_allocation_binds_country(self, registry):
        ip = registry.allocate_phishing_ip()
        assert registry.country(ip) is not None

    def test_unique_ips(self, registry):
        ips = {registry.allocate_benign_ip() for _ in range(200)}
        assert len(ips) == 200

    def test_phishing_mix_is_us_heavy(self, registry):
        ips = [registry.allocate_phishing_ip() for _ in range(600)]
        histogram = registry.histogram(ips)
        top_country = next(iter(histogram))
        assert top_country == "US"

    def test_histogram_unknown_ip(self, registry):
        assert registry.histogram(["10.0.0.1"]) == {"??": 1}


class TestWhois:
    @pytest.fixture()
    def registry(self):
        return WhoisRegistry(np.random.default_rng(9))

    def test_lookup_roundtrip(self, registry):
        registry.register_phishing("evil.com")
        record = registry.lookup("EVIL.com")
        assert record is not None
        assert 2005 <= record.registration_year <= 2018

    def test_phishing_years_are_recent(self, registry):
        domains = [f"phish{i}.com" for i in range(400)]
        for domain in domains:
            registry.register_phishing(domain)
        histogram = registry.year_histogram(domains)
        recent = sum(v for year, v in histogram.items() if year >= 2015)
        assert recent / sum(histogram.values()) > 0.75  # Fig 16 mass

    def test_organic_years_are_spread(self, registry):
        domains = [f"old{i}.com" for i in range(400)]
        for domain in domains:
            registry.register_organic(domain)
        histogram = registry.year_histogram(domains)
        assert min(histogram) < 2010

    def test_registrar_coverage_is_partial(self, registry):
        domains = [f"d{i}.com" for i in range(300)]
        for domain in domains:
            registry.register_phishing(domain)
        with_registrar = sum(registry.registrar_histogram(domains).values())
        assert 0.4 < with_registrar / 300 < 0.85  # ~63% in the paper

    def test_godaddy_leads(self, registry):
        domains = [f"g{i}.com" for i in range(800)]
        for domain in domains:
            registry.register_phishing(domain)
        histogram = registry.registrar_histogram(domains)
        assert next(iter(histogram)) == "godaddy.com"

    def test_missing_lookup(self, registry):
        assert registry.lookup("unknown.com") is None


class TestMarketplace:
    def test_list_has_22_entries(self):
        # the paper hand-compiled a list of 22 known marketplaces
        assert len(MARKETPLACE_DOMAINS) == 22

    def test_is_marketplace(self):
        assert is_marketplace("sedo.com")
        assert is_marketplace("SEDO.COM")
        assert not is_marketplace("example.com")

    def test_classify_redirect(self):
        assert classify_redirect("facebook.com", "facebook.com") == "original"
        assert classify_redirect("sedo.com", "facebook.com") == "market"
        assert classify_redirect("random.com", "facebook.com") == "other"


class TestBlacklists:
    def test_coverage_model(self):
        rng = np.random.default_rng(11)
        blacklist = Blacklist("test", rng, squatting_coverage=0.0,
                              ordinary_coverage=1.0, mean_listing_delay_days=0.0)
        assert blacklist.ingest("squat.com", is_squatting=True) is None
        entry = blacklist.ingest("ordinary.com", is_squatting=False)
        assert entry is not None
        assert blacklist.contains("ordinary.com")
        assert not blacklist.contains("squat.com")

    def test_listing_delay_gates_observation_day(self):
        rng = np.random.default_rng(12)
        blacklist = Blacklist("slow", rng, squatting_coverage=1.0,
                              ordinary_coverage=1.0, mean_listing_delay_days=50.0)
        blacklist.ingest("late.com", is_squatting=True)
        listed_day = blacklist._entries["late.com"].listed_day
        assert blacklist.contains("late.com", on_day=listed_day)
        assert not blacklist.contains("late.com", on_day=listed_day - 1)

    def test_forced_listing(self):
        rng = np.random.default_rng(13)
        blacklist = Blacklist("pt", rng, 0.0, 0.0)
        blacklist.add_listing("reported.com")
        assert blacklist.contains("reported.com", on_day=0)

    def test_virustotal_aggregates_members(self):
        aggregator = VirusTotalAggregator(np.random.default_rng(14), member_count=10,
                                          ordinary_coverage=0.5)
        aggregator.ingest("phish.com", is_squatting=False)
        assert aggregator.positives("phish.com", on_day=90) >= 1
        assert aggregator.contains("phish.com", on_day=90)

    def test_ecosystem_squatting_evasion_shape(self):
        """Most squatting phish must evade all services (Table 12)."""
        ecosystem = BlacklistEcosystem(np.random.default_rng(15))
        domains = [f"squat{i}.com" for i in range(400)]
        for domain in domains:
            ecosystem.ingest(domain, is_squatting=True)
        results = ecosystem.check_all(domains, on_day=30)
        undetected = sum(1 for r in results if not r.detected)
        assert undetected / len(results) > 0.80
        phishtank_hits = sum(1 for r in results if r.phishtank)
        virustotal_hits = sum(1 for r in results if r.virustotal)
        assert phishtank_hits <= virustotal_hits  # VT's 70 lists see more
