"""Fault model unit tests: plans, injector draws, clock, resilience parts."""

import pytest

from repro.faults import (
    BrowserCrashFault,
    CircuitBreaker,
    ConnectionResetFault,
    CrawlHealth,
    DNSFault,
    FaultError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    HTTPServerError,
    RetryPolicy,
    SimClock,
)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(dns_servfail_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(ocr_garble_rate=-0.1)

    def test_uniform_splits_budget(self):
        plan = FaultPlan.uniform(0.2, seed=7)
        share = 0.2 / len(FaultKind.TRANSPORT)
        assert plan.dns_servfail_rate == pytest.approx(share)
        assert plan.browser_crash_rate == pytest.approx(share)
        assert plan.ocr_garble_rate == pytest.approx(share)
        assert plan.seed == 7
        assert plan.any_faults

    def test_zero_plan_has_no_faults(self):
        assert not FaultPlan().any_faults

    def test_uniform_rejects_out_of_range_compound_rate(self):
        with pytest.raises(ValueError):
            FaultPlan.uniform(1.5)
        with pytest.raises(ValueError):
            FaultPlan.uniform(-0.1)


class TestFaultInjector:
    def test_draws_are_deterministic_and_seed_addressed(self):
        a = FaultInjector(FaultPlan(seed=1, http_5xx_rate=0.5))
        b = FaultInjector(FaultPlan(seed=1, http_5xx_rate=0.5))
        c = FaultInjector(FaultPlan(seed=2, http_5xx_rate=0.5))
        keys = [("d%d.com" % i, "web", 0, 0) for i in range(200)]
        draws_a = [a.draw(FaultKind.HTTP_5XX, 0.5, *k) for k in keys]
        draws_b = [b.draw(FaultKind.HTTP_5XX, 0.5, *k) for k in keys]
        draws_c = [c.draw(FaultKind.HTTP_5XX, 0.5, *k) for k in keys]
        assert draws_a == draws_b
        assert draws_a != draws_c        # different seed, different weather
        assert 20 < sum(draws_a) < 180   # rate is roughly honoured

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(FaultPlan(seed=3))
        assert not any(
            injector.draw(FaultKind.CONN_RESET, 0.0, "x.com", i)
            for i in range(100)
        )
        assert injector.counts() == {}

    def test_check_dns_raises_typed_faults(self):
        injector = FaultInjector(FaultPlan(seed=5, dns_servfail_rate=0.9))
        with pytest.raises(DNSFault) as exc_info:
            for i in range(50):
                injector.check_dns("victim.com", 0, i)
        assert exc_info.value.kind == FaultKind.DNS_SERVFAIL
        assert injector.counts()[FaultKind.DNS_SERVFAIL] >= 1

    def test_dns_timeout_charges_the_clock(self):
        clock = SimClock()
        injector = FaultInjector(
            FaultPlan(seed=5, dns_timeout_rate=0.9, dns_timeout_delay=4.0),
            clock,
        )
        with pytest.raises(DNSFault):
            for i in range(50):
                injector.check_dns("victim.com", 0, i)
        assert clock.now() >= 4.0

    def test_check_server_status_override(self):
        injector = FaultInjector(FaultPlan(seed=11, http_5xx_rate=0.9))
        statuses = set()
        for i in range(30):
            statuses.add(injector.check_server("victim.com", "web", 0, i))
        assert 503 in statuses

    def test_slow_response_advances_clock_without_failing(self):
        clock = SimClock()
        injector = FaultInjector(
            FaultPlan(seed=13, slow_response_rate=0.9, slow_response_delay=2.5),
            clock,
        )
        for i in range(30):
            assert injector.check_server("victim.com", "web", 0, i) is None
        assert clock.now() > 0
        assert injector.counts()[FaultKind.SLOW_RESPONSE] >= 1

    def test_fault_hierarchy(self):
        for error in (
            DNSFault("dns_servfail", "a.com"),
            ConnectionResetFault("conn_reset", "a.com"),
            HTTPServerError("http_5xx", "a.com", status=502),
            BrowserCrashFault("browser_crash", "http://a.com/"),
        ):
            assert isinstance(error, FaultError)
        assert HTTPServerError("http_5xx", "a.com", status=502).status == 502


class TestSimClock:
    def test_sleep_accumulates(self):
        clock = SimClock()
        clock.sleep(1.5)
        clock.sleep(2.5)
        assert clock.now() == pytest.approx(4.0)
        assert clock.total_slept == pytest.approx(4.0)

    def test_negative_sleep_ignored(self):
        clock = SimClock()
        clock.sleep(-1.0)
        assert clock.now() == 0.0

    def test_advance_to_never_goes_backwards(self):
        clock = SimClock()
        clock.advance_to(10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=8.0, jitter=0.0)
        delays = [policy.delay(a, "job") for a in range(5)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_jitter_is_deterministic_but_spread(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        again = RetryPolicy(base_delay=1.0, jitter=0.5)
        delays = [policy.delay(0, f"job{i}") for i in range(20)]
        assert delays == [again.delay(0, f"job{i}") for i in range(20)]
        assert len(set(delays)) > 1          # different jobs, different jitter
        assert all(0.5 <= d <= 1.0 for d in delays)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60.0)
        for _ in range(3):
            assert breaker.allow(0.0)
            breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(10.0)

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(59.0)
        assert breaker.allow(61.0)           # half-open probe
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        breaker.record_failure(0.0)
        assert breaker.allow(61.0)
        breaker.record_failure(61.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        assert not breaker.allow(62.0)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestCrawlHealth:
    def test_merge_accumulates_everything(self):
        a = CrawlHealth(attempts=5, successes=4, retries=1, dead_letters=1)
        a.record_failure("conn_reset")
        a.record_degraded("ground_truth")
        b = CrawlHealth(attempts=3, successes=3, breaker_trips=2)
        b.record_failure("conn_reset")
        b.record_failure("dns_servfail")
        a.merge(b)
        assert a.attempts == 8
        assert a.successes == 7
        assert a.breaker_trips == 2
        assert a.failures["conn_reset"] == 2
        assert a.failures["dns_servfail"] == 1
        assert a.degraded_stages == 1

    def test_format_mentions_the_essentials(self):
        health = CrawlHealth(attempts=10, successes=8, retries=2,
                             dead_letters=1, breaker_trips=1)
        health.record_failure("http_5xx")
        health.record_degraded("evasion_reported")
        text = health.format()
        assert "dead letters:    1" in text
        assert "http_5xx" in text
        assert "evasion_reported" in text

    def test_to_dict_is_stable_and_resume_agnostic(self):
        health = CrawlHealth(attempts=1, resumes=3)
        data = health.to_dict()
        assert "resumes" not in data
        assert data["attempts"] == 1
