"""HTML document model, serializer, parser, and extraction helpers."""

import pytest

from repro.web.html import (
    Element,
    document,
    el,
    form_attributes,
    forms,
    lexical_texts,
    parse_html,
    scripts,
    text_content,
)


class TestBuilder:
    def test_el_shorthand(self):
        node = el("p", "hello", cls="intro", data_x="1")
        assert node.tag == "p"
        assert node.attrs == {"class": "intro", "data-x": "1"}
        assert node.own_text == "hello"

    def test_document_skeleton(self):
        page = document("Title", el("h1", "Header"))
        assert page.find("title").text() == "Title"
        assert page.find("body").find("h1").text() == "Header"


class TestSerialization:
    def test_escapes_attribute_values(self):
        node = el("a", "link", href='x"y')
        assert '"x&quot;y"' in node.to_html()

    def test_escapes_text(self):
        assert "&lt;b&gt;" in el("p", "<b>").to_html()

    def test_void_elements_have_no_closing_tag(self):
        markup = el("input", type="text").to_html()
        assert markup == '<input type="text">'

    def test_script_body_is_raw(self):
        markup = el("script", "if (a < b) { x(); }").to_html()
        assert "<script>if (a < b) { x(); }</script>" == markup


class TestRoundTrip:
    def test_parse_own_output(self):
        page = document(
            "PayPal",
            el("h1", "Welcome"),
            el("form", el("input", type="password", placeholder="password"),
               el("button", "Go"), action="/x"),
            el("script", "var a = 1;"),
        )
        tree = parse_html(page.to_html())
        assert tree.find("title").text() == "PayPal"
        assert tree.find("h1").text() == "Welcome"
        assert len(forms(tree)) == 1
        assert scripts(tree) == ["var a = 1;"]

    def test_tolerates_stray_end_tags(self):
        tree = parse_html("<div><p>hi</p></span></div>")
        assert tree.find("p").text() == "hi"

    def test_tolerates_unclosed_tags(self):
        tree = parse_html("<div><p>one<p>two")
        texts = [p.text() for p in tree.find_all("p")]
        assert "one" in " ".join(texts) and "two" in " ".join(texts)

    def test_charrefs_are_decoded(self):
        tree = parse_html("<p>a &amp; b</p>")
        assert tree.find("p").text() == "a & b"


class TestExtraction:
    PAGE = document(
        "Bank - Login",
        el("h1", "My Bank"),
        el("p", "Please sign in."),
        el("a", "Forgot?", href="/forgot"),
        el("form",
           el("input", type="text", name="user", placeholder="enter username"),
           el("input", type="password", name="pass", placeholder="enter password"),
           el("label", "Remember me"),
           el("button", "Log In"),
           action="/login"),
        el("script", "var x = eval('1');"),
    )

    def test_lexical_texts(self):
        texts = lexical_texts(parse_html(self.PAGE.to_html()))
        assert texts["title"] == ["Bank - Login"]
        assert texts["h"] == ["My Bank"]
        assert texts["p"] == ["Please sign in."]
        assert texts["a"] == ["Forgot?"]

    def test_form_attributes(self):
        attrs = form_attributes(parse_html(self.PAGE.to_html()))
        assert "enter username" in attrs
        assert "enter password" in attrs
        assert "Log In" in attrs
        assert "Remember me" in attrs
        assert "password" in attrs  # the type attribute

    def test_text_content_skips_scripts(self):
        text = text_content(parse_html(self.PAGE.to_html()))
        assert "Please sign in." in text
        assert "eval" not in text

    def test_iter_and_find_all(self):
        tree = parse_html(self.PAGE.to_html())
        inputs = tree.find_all("input")
        assert len(inputs) == 2
        assert inputs[1].get("type") == "password"
