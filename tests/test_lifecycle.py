"""Lifecycle analytics: worker invariance, oracle equality, report shape."""

import pytest

from repro.analysis.lifecycle import (
    ORGANIC,
    diff_chain_digest,
    diff_series,
    diff_series_serial,
    lifecycle_report,
)
from repro.brands import build_paper_catalog
from repro.phishworld.series import SeriesConfig, generate_series
from repro.squatting.detector import SquattingDetector

CONFIG = SeriesConfig(n_snapshots=5, base_events=250,
                      events_per_snapshot=120)


@pytest.fixture(scope="module")
def series():
    return generate_series(CONFIG)


@pytest.fixture(scope="module")
def detector():
    return SquattingDetector(build_paper_catalog(200))


def test_diff_chain_is_worker_count_invariant(series):
    chains = {workers: diff_chain_digest(diff_series(series,
                                                     workers=workers))
              for workers in (1, 2, 4)}
    assert len(set(chains.values())) == 1


def test_parallel_chain_equals_serial_oracle(series):
    parallel = diff_series(series, workers=2)
    serial = diff_series_serial(series)
    assert [d.digest for d in parallel] == [d.digest for d in serial]
    assert diff_chain_digest(parallel) == diff_chain_digest(serial)


def test_diff_series_needs_two_snapshots():
    single = generate_series(SeriesConfig(
        n_snapshots=1, base_events=60, events_per_snapshot=10))
    with pytest.raises(ValueError):
        diff_series(single)


def test_report_is_deterministic(series, detector):
    first = lifecycle_report(series, detector=detector)
    second = lifecycle_report(series, detector=detector, workers=2)
    assert first.chain_digest == second.chain_digest
    assert first.as_dict() == second.as_dict()


def test_report_shape_and_conservation(series, detector):
    report = lifecycle_report(series, detector=detector)
    assert report.snapshots == len(series)
    assert report.cadence_days == CONFIG.cadence_days
    assert len(report.diff_digests) == len(series) - 1
    assert len(report.pair_counts) == len(series) - 1

    # every domain ever alive lands in exactly one family bucket
    total_born = sum(fam.born for fam in report.families.values())
    alive_union = set()
    for snap in series:
        zone = snap.zone
        for reg_id in range(zone.n_registered):
            alive_union.add(zone.registered_at(reg_id))
    assert total_born == len(alive_union)

    for fam in report.families.values():
        assert 0.0 <= fam.rereg_rate <= 1.0
        assert 0.0 <= fam.blacklist_coverage <= 1.0
        assert fam.takedowns <= len(fam.lifetimes)
        # survival starts at 1.0 and never rises
        curve = fam.survival()
        values = [s for _t, s in curve]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))


def test_churny_series_produces_lifecycle_signal(series, detector):
    report = lifecycle_report(series, detector=detector)
    families = report.families
    assert ORGANIC in families
    squat_families = {name for name in families if name != ORGANIC}
    assert squat_families                        # squats were observed
    assert sum(f.takedowns for f in families.values()) > 0
    assert sum(f.weaponized for f in families.values()) > 0


def test_organic_domains_skip_the_blacklist(series, detector):
    report = lifecycle_report(series, detector=detector)
    organic = report.families[ORGANIC]
    assert organic.blacklisted == 0
    assert organic.blacklist_lag_days is None


def test_blacklist_seed_changes_coverage_not_diffs(series, detector):
    base = lifecycle_report(series, detector=detector, blacklist_seed=1)
    other = lifecycle_report(series, detector=detector, blacklist_seed=2)
    assert base.chain_digest == other.chain_digest
    covered = lambda rep: tuple(fam.blacklisted
                                for _n, fam in sorted(rep.families.items()))
    # different seeds draw different coverage outcomes (overwhelmingly)
    assert covered(base) != covered(other) or \
        sum(covered(base)) == 0


def test_precomputed_diffs_are_accepted(series, detector):
    diffs = diff_series_serial(series)
    report = lifecycle_report(series, diffs=diffs, detector=detector)
    assert report.chain_digest == diff_chain_digest(diffs)
