"""The bare-login benign population and its indistinguishability property."""

import numpy as np
import pytest

from repro.brands import Brand
from repro.features.extraction import FeatureExtractor
from repro.phishworld.attacker import (
    EvasionProfile,
    PhishingPageBuilder,
    PhishingPageSpec,
)
from repro.phishworld.sites import bare_login_page
from repro.web.html import forms, parse_html, text_content
from repro.web.screenshot import render_page


def image_only_phish(seed=5):
    """Draw an attacker page guaranteed to be the image-only variant."""
    brand = Brand(name="paypal", domain="paypal.com", sensitivity="payment")
    for offset in range(40):
        builder = PhishingPageBuilder(np.random.default_rng(seed + offset))
        page = builder.build(PhishingPageSpec(
            brand=brand, theme="login",
            evasion=EvasionProfile(string=True)))
        if "verify your account" in page.to_html():
            return page
    raise AssertionError("image-only variant never drawn")


class TestBareLogin:
    def test_has_password_form_and_no_body_text(self):
        page = bare_login_page("panel.example.net", np.random.default_rng(1))
        tree = parse_html(page.to_html())
        assert forms(tree)
        text = text_content(tree).lower()
        # only form labels and nav links, no descriptive copy
        assert "manage" not in text and "welcome" not in text

    def test_deterministic_per_rng(self):
        a = bare_login_page("x.com", np.random.default_rng(3)).to_html()
        b = bare_login_page("x.com", np.random.default_rng(3)).to_html()
        assert a == b


class TestIndistinguishability:
    """The design property that makes the OCR channel load-bearing."""

    def test_lexical_features_identical_to_image_only_phish(self):
        extractor = FeatureExtractor(use_ocr=False)
        phish = image_only_phish()
        # pick the benign bare login with the same service word as the phish
        phish_title = parse_html(phish.to_html()).find("title").text()
        benign = None
        for seed in range(40):
            candidate = bare_login_page("any.example", np.random.default_rng(seed))
            if parse_html(candidate.to_html()).find("title").text() == phish_title:
                benign = candidate
                break
        assert benign is not None, phish_title
        phish_features = extractor.extract(phish.to_html())
        benign_features = extractor.extract(benign.to_html())
        assert sorted(phish_features.lexical_tokens) == sorted(
            benign_features.lexical_tokens)
        assert sorted(phish_features.form_tokens) == sorted(
            benign_features.form_tokens)
        assert phish_features.form_count == benign_features.form_count
        assert (phish_features.password_input_count
                == benign_features.password_input_count)

    def test_ocr_separates_them(self):
        extractor = FeatureExtractor(extra_lexicon=["paypal"])
        phish = image_only_phish()
        benign = bare_login_page("any.example", np.random.default_rng(2))
        phish_shot = render_page(parse_html(phish.to_html()))
        benign_shot = render_page(parse_html(benign.to_html()))
        phish_ocr = set(extractor.extract(phish.to_html(),
                                          phish_shot.pixels).ocr_tokens)
        benign_ocr = set(extractor.extract(benign.to_html(),
                                           benign_shot.pixels).ocr_tokens)
        assert "paypal" in phish_ocr or "verify" in phish_ocr
        assert "paypal" not in benign_ocr and "verify" not in benign_ocr
