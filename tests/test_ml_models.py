"""Classifiers: Naive Bayes, k-NN, decision tree, random forest."""

import numpy as np
import pytest

from repro.ml import (
    BernoulliNaiveBayes,
    DecisionTree,
    KNearestNeighbors,
    MultinomialNaiveBayes,
    RandomForest,
)


def separable_data(n=240, d=20, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.poisson(0.3, size=(n, d)).astype(float)
    y = (rng.random(n) < 0.5).astype(int)
    x[y == 1, :4] += rng.poisson(2.0, size=(int(y.sum()), 4))
    return x, y


ALL_MODELS = [
    lambda: MultinomialNaiveBayes(),
    lambda: BernoulliNaiveBayes(),
    lambda: KNearestNeighbors(k=5),
    lambda: KNearestNeighbors(k=3, metric="euclidean"),
    lambda: DecisionTree(max_depth=8),
    lambda: RandomForest(n_trees=10, max_depth=8),
]


@pytest.mark.parametrize("make_model", ALL_MODELS)
def test_learns_separable_data(make_model):
    x, y = separable_data()
    model = make_model().fit(x, y)
    accuracy = (model.predict(x) == y).mean()
    # Bernoulli NB binarizes away the count signal, so it sits a bit lower
    assert accuracy > 0.85


@pytest.mark.parametrize("make_model", ALL_MODELS)
def test_predict_proba_in_unit_interval(make_model):
    x, y = separable_data(n=100)
    probs = make_model().fit(x, y).predict_proba(x)
    assert probs.shape == (100,)
    assert (probs >= 0).all() and (probs <= 1).all()


@pytest.mark.parametrize("make_model", ALL_MODELS)
def test_unfitted_raises(make_model):
    with pytest.raises(RuntimeError):
        make_model().predict_proba(np.zeros((2, 3)))


@pytest.mark.parametrize("make_model", ALL_MODELS)
def test_deterministic_refit(make_model):
    x, y = separable_data(n=120)
    a = make_model().fit(x, y).predict_proba(x)
    b = make_model().fit(x, y).predict_proba(x)
    assert np.allclose(a, b)


class TestNaiveBayes:
    def test_rejects_negative_features(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit(np.array([[-1.0, 2.0]]), np.array([1]))

    def test_rejects_single_class(self):
        x = np.ones((4, 2))
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit(x, np.zeros(4))

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(alpha=0)

    def test_prior_shifts_probability(self):
        # same likelihoods, skewed priors -> skewed scores on neutral input
        x = np.array([[1.0, 1.0]] * 10)
        y = np.array([1] * 9 + [0])
        model = MultinomialNaiveBayes().fit(x, y)
        assert model.predict_proba(np.array([[1.0, 1.0]]))[0] > 0.8


class TestKNN:
    def test_k1_memorizes(self):
        x, y = separable_data(n=60)
        model = KNearestNeighbors(k=1).fit(x, y)
        assert (model.predict(x) == y).all()

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNearestNeighbors(k=0)

    def test_rejects_bad_metric(self):
        with pytest.raises(ValueError):
            KNearestNeighbors(metric="manhattan")

    def test_zero_vector_does_not_crash_cosine(self):
        x = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        y = np.array([0, 0, 1, 1])
        model = KNearestNeighbors(k=1).fit(x, y)
        probs = model.predict_proba(np.array([[0.0, 0.0]]))
        assert np.isfinite(probs).all()


class TestTree:
    def test_pure_node_becomes_leaf(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTree(max_depth=4, min_samples_split=2).fit(x, y)
        assert (tree.predict(x) == y).all()

    def test_max_depth_zero_is_prior(self):
        x, y = separable_data(n=100)
        tree = DecisionTree(max_depth=0).fit(x, y)
        probs = tree.predict_proba(x)
        assert np.allclose(probs, y.mean())

    def test_min_samples_leaf_respected(self):
        x = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.array([0] * 9 + [1])
        tree = DecisionTree(min_samples_leaf=3, min_samples_split=2).fit(x, y)
        # the lone positive cannot be isolated with leaf >= 3
        assert tree.predict_proba(np.array([[9.0]]))[0] < 1.0


class TestVectorizedEquivalence:
    """``legacy=True`` preserves the pre-vectorization reference paths;
    the vectorized twins must reproduce them byte for byte."""

    @pytest.mark.parametrize("max_features", [None, 3])
    def test_tree_matches_reference(self, max_features):
        for seed in range(4):
            x, y = separable_data(n=150, d=10, seed=seed)
            x = np.round(x)  # integer grid -> plenty of threshold ties
            fast = DecisionTree(max_depth=8, max_features=max_features,
                                rng=np.random.default_rng(seed)).fit(x, y)
            slow = DecisionTree(max_depth=8, max_features=max_features,
                                rng=np.random.default_rng(seed),
                                legacy=True).fit(x, y)
            assert np.array_equal(fast.predict_proba(x),
                                  slow.predict_proba(x))
            assert np.array_equal(fast.feature_importances,
                                  slow.feature_importances)

    def test_forest_matches_reference(self):
        x, y = separable_data(n=120, d=8, seed=5)
        fast = RandomForest(n_trees=6, max_depth=6, seed=11).fit(x, y)
        slow = RandomForest(n_trees=6, max_depth=6, seed=11,
                            legacy=True).fit(x, y)
        assert np.array_equal(fast.predict_proba(x), slow.predict_proba(x))
        assert np.array_equal(fast.feature_importances,
                              slow.feature_importances)


class TestParallelTraining:
    """``workers`` is a pure throughput knob: outputs byte-match serial."""

    def test_forest_fit_workers_byte_identical(self):
        x, y = separable_data(n=160, d=12, seed=9)
        serial = RandomForest(n_trees=10, max_depth=6, seed=3).fit(
            x, y, workers=1)
        for workers in (2, 4):
            fanned = RandomForest(n_trees=10, max_depth=6, seed=3).fit(
                x, y, workers=workers)
            assert np.array_equal(serial.predict_proba(x),
                                  fanned.predict_proba(x))
            assert np.array_equal(serial.feature_importances,
                                  fanned.feature_importances)

    def test_cross_validate_workers_byte_identical(self):
        from repro.core.pipeline import ModelFactory
        from repro.ml.validation import cross_validate

        x, y = separable_data(n=160, d=12, seed=4)
        factory = ModelFactory(name="random_forest", rf_trees=8,
                               rf_max_depth=6, knn_k=5)
        serial = cross_validate(factory, x, y, k=4, workers=1)
        for workers in (2, 3):
            fanned = cross_validate(factory, x, y, k=4, workers=workers)
            assert fanned.row() == serial.row()
            assert fanned.auc == serial.auc
            assert fanned.accuracy == serial.accuracy


class TestForest:
    def test_rejects_zero_trees(self):
        with pytest.raises(ValueError):
            RandomForest(n_trees=0)

    def test_probability_is_tree_average(self):
        x, y = separable_data(n=80)
        forest = RandomForest(n_trees=5, max_depth=4).fit(x, y)
        manual = np.mean([t.predict_proba(x) for t in forest._trees], axis=0)
        assert np.allclose(forest.predict_proba(x), manual)

    def test_seed_changes_ensemble(self):
        x, y = separable_data(n=80, seed=2)
        a = RandomForest(n_trees=5, seed=1).fit(x, y).predict_proba(x)
        b = RandomForest(n_trees=5, seed=2).fit(x, y).predict_proba(x)
        assert not np.allclose(a, b)

    def test_unsupported_max_features(self):
        x, y = separable_data(n=40)
        with pytest.raises(ValueError):
            RandomForest(n_trees=2, max_features="third").fit(x, y)
