"""Zone store indexing and lookups."""

from repro.dns.records import DNSRecord
from repro.dns.zone import ZoneStore


def make_zone():
    zone = ZoneStore()
    zone.add_name("facebook.com", ip="1.1.1.1")
    zone.add_name("www.facebook.com", ip="1.1.1.2")
    zone.add_name("facebook.audi", ip="2.2.2.2")
    zone.add_name("faceb00k.pw", ip="3.3.3.3")
    zone.add_name("vice.com", ip="4.4.4.4")
    return zone


def test_len_counts_full_names():
    assert len(make_zone()) == 5


def test_contains_and_get():
    zone = make_zone()
    assert "facebook.com" in zone
    assert "FACEBOOK.COM" in zone
    assert zone.get("nonexistent.com") is None
    assert zone.get("faceb00k.pw").ip == "3.3.3.3"


def test_registered_domain_collapsing():
    zone = make_zone()
    assert zone.has_registered_domain("facebook.com")
    assert zone.names_under("facebook.com") == ["facebook.com", "www.facebook.com"]


def test_core_label_index_spans_tlds():
    zone = make_zone()
    domains = zone.registered_domains_with_core("facebook")
    assert domains == ["facebook.audi", "facebook.com"]


def test_registered_domains_iteration():
    zone = make_zone()
    assert sorted(zone.registered_domains()) == [
        "faceb00k.pw", "facebook.audi", "facebook.com", "vice.com",
    ]


def test_add_replaces_existing_record():
    zone = make_zone()
    zone.add_name("facebook.com", ip="9.9.9.9")
    assert len(zone) == 5
    assert zone.get("facebook.com").ip == "9.9.9.9"


def test_remove_updates_indices():
    zone = make_zone()
    assert zone.remove("www.facebook.com")
    assert zone.names_under("facebook.com") == ["facebook.com"]
    # the registered-domain bucket survives while facebook.com remains
    assert "facebook.com" in zone._by_registered
    assert zone.remove("facebook.com")
    assert not zone.has_registered_domain("facebook.com")
    # last name under the registered domain gone -> its bucket is deleted
    # outright, not left as an empty set
    assert "facebook.com" not in zone._by_registered
    # core index keeps facebook.audi
    assert zone.registered_domains_with_core("facebook") == ["facebook.audi"]
    assert zone._by_core["facebook"] == {"facebook.audi"}
    assert not zone.remove("facebook.com")  # already gone


def test_remove_last_core_label_drops_core_bucket():
    zone = make_zone()
    # faceb00k.pw is the only registered domain under core "faceb00k"
    assert "faceb00k" in zone._by_core
    assert zone.remove("faceb00k.pw")
    assert "faceb00k" not in zone._by_core
    assert "faceb00k.pw" not in zone._by_registered
    assert zone.registered_domains_with_core("faceb00k") == []
    # removing one TLD sibling must not orphan the other's core entry
    assert zone.remove("facebook.audi")
    assert "facebook" in zone._by_core
    assert zone.registered_domains_with_core("facebook") == ["facebook.com"]
    assert zone.stats()["core_labels"] == 2  # facebook, vice


def test_stats():
    stats = make_zone().stats()
    assert stats["records"] == 5
    assert stats["registered_domains"] == 4
    assert stats["core_labels"] == 3  # facebook, faceb00k, vice
