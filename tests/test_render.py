"""ASCII exhibit renderers."""

from repro.analysis.render import bar_chart, curve, percent, table


class TestBarChart:
    def test_basic_chart(self):
        out = bar_chart({"combo": 10, "typo": 5}, title="Types")
        assert "Types" in out
        assert "combo" in out and "typo" in out
        # the bigger value gets the longer bar
        combo_line = next(l for l in out.splitlines() if l.startswith("combo"))
        typo_line = next(l for l in out.splitlines() if l.startswith("typo"))
        assert combo_line.count("#") > typo_line.count("#")

    def test_empty_data(self):
        assert "(no data)" in bar_chart({})

    def test_zero_values_render(self):
        out = bar_chart({"a": 0, "b": 0})
        assert "a" in out and "b" in out

    def test_value_format(self):
        out = bar_chart({"x": 0.123}, value_format="{:.2f}")
        assert "0.12" in out


class TestTable:
    def test_alignment(self):
        out = table(["name", "count"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len({line.index("count") == lines[0].index("count")
                    for line in lines[:1]}) == 1
        assert "longer" in out

    def test_title(self):
        assert table(["h"], [["v"]], title="My Table").startswith("My Table")

    def test_empty_rows(self):
        out = table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_non_string_cells(self):
        out = table(["n"], [[3.14159], [None]])
        assert "3.14159" in out and "None" in out


class TestCurve:
    def test_samples_checkpoints(self):
        points = [(i, float(i)) for i in range(1, 101)]
        out = curve(points, sample_at=(1, 50, 100))
        assert "top    1" in out
        assert "top  100" in out

    def test_skips_out_of_range(self):
        out = curve([(1, 10.0)], sample_at=(1, 99))
        assert "99" not in out


def test_percent():
    assert percent(0.5) == "50.0%"
    assert percent(0.034) == "3.4%"
