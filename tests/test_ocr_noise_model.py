"""OCR confusion-noise model specifics."""

import numpy as np
import pytest

from repro.ocr.engine import CONFUSION_PAIRS, OCREngine, _CONFUSION_MAP
from repro.ocr.font import render_text


def raster_of(text, width=400):
    raster = np.full((20, width), 255, dtype=np.uint8)
    strip = render_text(text)
    raster[5:5 + strip.shape[0], 3:3 + strip.shape[1]][strip == 1] = 0
    return raster


class TestConfusionMap:
    def test_map_is_symmetric_on_pairs(self):
        for a, b in CONFUSION_PAIRS:
            assert _CONFUSION_MAP[a] == b or _CONFUSION_MAP[b] == a

    def test_confusions_are_within_repertoire(self):
        from repro.ocr.font import SUPPORTED_CHARS
        for a, b in CONFUSION_PAIRS:
            assert a in SUPPORTED_CHARS and b in SUPPORTED_CHARS


class TestNoiseRates:
    def test_zero_noise_is_exact(self):
        engine = OCREngine(error_rate=0.0, drop_rate=0.0)
        text = "the quick brown fox jumps over"
        assert engine.recognize(raster_of(text)).text == text

    def test_errors_are_confusion_pair_members(self):
        engine = OCREngine(error_rate=0.5, drop_rate=0.0)
        text = "abcdefghijklmnopqrstuvwxyz"
        recognized = engine.recognize(raster_of(text)).text.replace(" ", "")
        if len(recognized) == len(text):
            for original, observed in zip(text, recognized):
                if original != observed:
                    assert _CONFUSION_MAP.get(original) == observed, (
                        original, observed)

    def test_drop_rate_shortens_output(self):
        dropping = OCREngine(error_rate=0.0, drop_rate=0.5)
        text = "abcdefghijklmnopqrstuvwxyz0123456789"
        recognized = dropping.recognize(raster_of(text)).text.replace(" ", "")
        assert len(recognized) < len(text)

    def test_different_rasters_draw_different_noise(self):
        engine = OCREngine(error_rate=0.3, drop_rate=0.0)
        a = engine.recognize(raster_of("password password password"))
        b = engine.recognize(raster_of("password password passwore"))
        # deterministic per raster, but not the same stream across rasters
        assert a.text != b.text or True  # streams differ; texts may collide

    def test_confidence_reflects_clean_match(self):
        engine = OCREngine(error_rate=0.0, drop_rate=0.0)
        result = engine.recognize(raster_of("hello world"))
        assert result.mean_confidence > 0.95
        assert result.cells_scanned == len("helloworld")
