"""Pipeline configuration knobs actually change behaviour."""

import pytest

from repro.core import PipelineConfig, SquatPhi
from repro.features.embedding import EmbeddingConfig


class TestDefaults:
    def test_default_classifier_is_random_forest(self):
        assert PipelineConfig().classifier == "random_forest"

    def test_default_verification_is_expert(self):
        assert PipelineConfig().verification_mode == "expert"

    def test_embedding_default_uses_all_channels(self):
        embedding = PipelineConfig().embedding
        assert embedding.use_ocr and embedding.use_lexical and embedding.use_forms


class TestModelSelection:
    @pytest.mark.parametrize("name,type_name", [
        ("random_forest", "RandomForest"),
        ("knn", "KNearestNeighbors"),
        ("naive_bayes", "MultinomialNaiveBayes"),
    ])
    def test_make_model(self, micro_world, name, type_name):
        pipeline = SquatPhi(micro_world, PipelineConfig(classifier=name))
        assert type(pipeline._make_model(name)).__name__ == type_name

    def test_unknown_classifier_raises(self, micro_world):
        pipeline = SquatPhi(micro_world, PipelineConfig())
        with pytest.raises(ValueError):
            pipeline._make_model("svm")

    def test_unknown_verification_mode_raises(self, micro_world):
        pipeline = SquatPhi(micro_world,
                            PipelineConfig(verification_mode="oracle"))
        with pytest.raises(ValueError):
            pipeline.verify([])


class TestCrowdMode:
    def test_crowd_verification_runs(self, micro_world, pipeline_result):
        crowd = SquatPhi(micro_world, PipelineConfig(
            verification_mode="crowd", crowd_size=7, crowd_votes_per_item=3,
        ))
        verified = crowd.verify(pipeline_result.flagged)
        assert verified
        flagged_domains = {f.domain for f in pipeline_result.flagged}
        assert {v.domain for v in verified} <= flagged_domains

    def test_crowd_and_expert_agree_mostly(self, micro_world, pipeline_result):
        expert = SquatPhi(micro_world, PipelineConfig())
        crowd = SquatPhi(micro_world, PipelineConfig(verification_mode="crowd"))
        expert_domains = {v.domain for v in expert.verify(pipeline_result.flagged)}
        crowd_domains = {v.domain for v in crowd.verify(pipeline_result.flagged)}
        union = expert_domains | crowd_domains
        overlap = len(expert_domains & crowd_domains) / len(union)
        assert overlap > 0.8


class TestClassifierChoiceAffectsPipeline:
    def test_deployed_model_follows_config(self, micro_world, pipeline_result):
        pipeline = SquatPhi(micro_world, PipelineConfig(classifier="knn",
                                                        cv_folds=3))
        pipeline.train(pipeline_result.ground_truth, evaluate_all=False)
        assert type(pipeline.model).__name__ == "KNearestNeighbors"

    def test_ocr_disabled_pipeline_trains(self, micro_world, pipeline_result):
        config = PipelineConfig(
            use_ocr=False, cv_folds=3, rf_trees=8,
            embedding=EmbeddingConfig(use_ocr=False),
        )
        pipeline = SquatPhi(micro_world, config)
        reports = pipeline.train(pipeline_result.ground_truth,
                                 evaluate_all=False)
        assert "random_forest" in reports
