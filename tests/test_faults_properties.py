"""Property tests for the resilience primitives.

Satellites of the enrichment PR: the retry ladder must be deterministic
*across processes* (checkpoint/resume replays delays computed by an
earlier process), its envelope must be monotone, and health merging must
be order-independent (the pipeline folds per-snapshot health in whatever
order stages complete).
"""

from __future__ import annotations

import json
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.faults.resilience import CrawlHealth, RetryPolicy


# ----------------------------------------------------------------------
# RetryPolicy: cross-process determinism
# ----------------------------------------------------------------------

_SUBPROCESS_SNIPPET = """
import json, sys
sys.path.insert(0, {src!r})
from repro.faults.resilience import RetryPolicy
policy = RetryPolicy(base_delay=1.5, max_delay=40.0, jitter=0.5)
print(json.dumps([policy.delay(a, k)
                  for k in ("web|host-a|0", "mx|ns.pw|shop.pw", "whois|x|y")
                  for a in range(8)]))
"""


def test_delay_is_identical_across_processes():
    """PYTHONHASHSEED must not leak into backoff (crc32, not hash())."""
    import repro
    src = repro.__file__.rsplit("/repro/", 1)[0]
    policy = RetryPolicy(base_delay=1.5, max_delay=40.0, jitter=0.5)
    local = [policy.delay(a, k)
             for k in ("web|host-a|0", "mx|ns.pw|shop.pw", "whois|x|y")
             for a in range(8)]
    for seed in ("0", "1", "random"):
        out = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SNIPPET.format(src=src)],
            capture_output=True, text=True, check=True,
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"})
        assert json.loads(out.stdout) == local


# ----------------------------------------------------------------------
# RetryPolicy: ladder shape
# ----------------------------------------------------------------------

@given(
    base=st.floats(0.01, 10.0, allow_nan=False),
    max_delay=st.floats(1.0, 500.0, allow_nan=False),
    jitter=st.floats(0.0, 1.0, allow_nan=False),
    key=st.text(min_size=0, max_size=30),
)
@settings(max_examples=200, deadline=None)
def test_ladder_monotone_envelope(base, max_delay, jitter, key):
    """Raw rungs are nondecreasing; jitter only ever shaves downward."""
    policy = RetryPolicy(base_delay=base, max_delay=max_delay, jitter=jitter)
    raws = [min(base * (2.0 ** a), max_delay) for a in range(12)]
    assert raws == sorted(raws)
    for attempt, raw in enumerate(raws):
        delay = policy.delay(attempt, key)
        assert raw * (1.0 - jitter) - 1e-9 <= delay <= raw + 1e-9
        # deterministic: same (policy, key, attempt) -> same delay
        assert delay == policy.delay(attempt, key)


def test_ladder_cap_rung_bounds_every_later_delay():
    """The resolver reuses rung ``cap`` forever: its delay must bound the
    plateau regardless of how high the uncapped ladder would climb."""
    policy = RetryPolicy(base_delay=2.0, max_delay=10_000.0, jitter=0.5)
    cap = 6
    plateau = policy.delay(cap, "some|host|domain")
    assert plateau <= min(2.0 * 2.0 ** cap, 10_000.0)
    assert plateau >= min(2.0 * 2.0 ** cap, 10_000.0) * 0.5


# ----------------------------------------------------------------------
# CrawlHealth.merge: order independence
# ----------------------------------------------------------------------

# dyadic rationals keep float addition exact, so associativity is an
# equality (not an approximation) and the property is crisp
_counts = st.integers(0, 1000)
_seconds = st.integers(0, 4000).map(lambda i: i / 4)
_tallies = st.dictionaries(
    st.sampled_from(["timeout", "connection_reset", "http_error",
                     "slow_response", "backend_flap"]),
    st.integers(1, 50), max_size=4)


@st.composite
def healths(draw):
    health = CrawlHealth(
        attempts=draw(_counts),
        successes=draw(_counts),
        retries=draw(_counts),
        backoff_seconds=draw(_seconds),
        breaker_trips=draw(_counts),
        breaker_skips=draw(_counts),
        dead_letters=draw(_counts),
        slow_responses=draw(_counts),
        resumes=draw(_counts),
    )
    health.failures.update(draw(_tallies))
    health.degraded.update(draw(_tallies))
    return health


def _merged(*parts: CrawlHealth) -> dict:
    total = CrawlHealth()
    for part in parts:
        total.merge(part)
    return total.state_dict()


@given(a=healths(), b=healths())
@settings(max_examples=100, deadline=None)
def test_merge_commutes(a, b):
    assert _merged(a, b) == _merged(b, a)


@given(a=healths(), b=healths(), c=healths())
@settings(max_examples=100, deadline=None)
def test_merge_associates(a, b, c):
    ab = CrawlHealth()
    ab.merge(a)
    ab.merge(b)
    bc = CrawlHealth()
    bc.merge(b)
    bc.merge(c)
    assert _merged(ab, c) == _merged(a, bc)


@given(a=healths())
@settings(max_examples=50, deadline=None)
def test_merge_identity(a):
    assert _merged(a, CrawlHealth()) == _merged(a)
    # state_dict -> apply_delta round-trips to the same totals
    clone = CrawlHealth()
    clone.apply_delta(a.state_dict())
    assert clone.state_dict() == a.state_dict()
