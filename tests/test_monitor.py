"""Incremental brand monitor (§7 deployment mode)."""

import pytest

from repro.core.monitor import BrandMonitor
from repro.dns.zone import ZoneStore


@pytest.fixture(scope="module")
def trained_pipeline(pipeline, pipeline_result):
    # pipeline_result's construction trains the shared pipeline
    assert pipeline.model is not None
    return pipeline


@pytest.fixture()
def monitor(trained_pipeline, micro_world):
    monitor = BrandMonitor(trained_pipeline, brands=["facebook", "google"])
    monitor.baseline(micro_world.zone)
    return monitor


def clone_zone(zone):
    return ZoneStore(iter(zone))


class TestBaseline:
    def test_baseline_counts(self, trained_pipeline, micro_world):
        monitor = BrandMonitor(trained_pipeline, brands=["facebook"])
        added = monitor.baseline(micro_world.zone)
        assert added > 0
        assert monitor.baseline(micro_world.zone) == 0  # idempotent

    def test_unknown_brand_rejected(self, trained_pipeline):
        with pytest.raises(ValueError):
            BrandMonitor(trained_pipeline, brands=["notabrand"])


class TestObserve:
    def test_no_changes_no_alerts(self, monitor, micro_world):
        assert monitor.observe(clone_zone(micro_world.zone)) == []

    def test_new_squat_triggers_alert(self, monitor, micro_world):
        zone = clone_zone(micro_world.zone)
        zone.add_name("facebook-giveaway-new.tk")
        alerts = monitor.observe(zone)
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.domain == "facebook-giveaway-new.tk"
        assert alert.brand == "facebook"
        assert alert.squat_type == "combo"
        assert not alert.live            # not hosted anywhere

    def test_unwatched_brand_is_ignored(self, monitor, micro_world):
        zone = clone_zone(micro_world.zone)
        zone.add_name("paypal-giveaway-new.tk")   # paypal is not watched
        assert monitor.observe(zone) == []

    def test_alert_dedup_across_rounds(self, monitor, micro_world):
        zone = clone_zone(micro_world.zone)
        zone.add_name("new-facebook-hub.ml")
        first = monitor.observe(zone)
        second = monitor.observe(zone)
        assert len(first) == 1
        assert second == []

    def test_live_phishing_domain_scores_high(self, monitor, micro_world):
        # point the monitor at an existing hosted phishing domain by
        # pretending it is newly registered
        target = next(d for d in micro_world.phishing_domains()
                      if micro_world.squat_truth[d][0] in ("facebook", "google"))
        monitor._known_domains.discard(target)
        zone = clone_zone(micro_world.zone)
        alerts = monitor.observe(zone)
        by_domain = {a.domain: a for a in alerts}
        assert target in by_domain
        alert = by_domain[target]
        if alert.live:                    # cloaking/lifetime permitting
            assert alert.score is not None

    def test_summary(self, monitor, micro_world):
        zone = clone_zone(micro_world.zone)
        zone.add_name("google-promo-new.xyz")
        monitor.observe(zone)
        summary = monitor.summary()
        assert summary["alerts"] >= 1
        assert summary["rounds"] >= 1
        assert summary["known_domains"] > 0
