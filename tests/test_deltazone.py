"""Delta segments, the segmented read protocol, and compaction identity.

The load-bearing invariant (DESIGN.md §14): replaying (base + ordered
deltas) — tombstones first, then net adds in local order — reproduces the
final ordered-dict state of a ``ZoneStore`` fed the raw event sequence,
so :func:`repro.dns.deltazone.compact` is *byte-identical* to packing the
union from scratch.  The Hypothesis test at the bottom hammers exactly
that with random event tapes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.deltazone import (
    DeltaSegment,
    DeltaSegmentBuilder,
    SegmentedZone,
    compact,
    is_delta_file,
)
from repro.dns.packedzone import (
    PackedZone,
    PackedZoneCorruptError,
    pack_zone,
)
from repro.dns.zone import ZoneStore

BASE_NAMES = [
    ("alpha.com", "1.1.1.1"),
    ("www.alpha.com", "1.1.1.2"),
    ("beta.net", "2.2.2.2"),
    ("gamma.org", "3.3.3.3"),
]


def base_zone(names=BASE_NAMES):
    store = ZoneStore()
    for name, ip in names:
        store.add_name(name, ip=ip)
    return pack_zone(store)


# ----------------------------------------------------------------------
# segment builder semantics
# ----------------------------------------------------------------------

def test_builder_net_add_replaces_in_place():
    builder = DeltaSegmentBuilder()
    builder.add_name("one.com", ip="10.0.0.1")
    builder.add_name("two.com", ip="10.0.0.2")
    builder.add_name("one.com", ip="10.0.0.9")
    segment = builder.build(seq=1, base_digest="x")
    rows = list(segment.rows())
    assert [row[0] for row in rows] == ["one.com", "two.com"]
    assert rows[0][1] == "10.0.0.9"


def test_builder_remove_tombstones_and_drops_net_add():
    builder = DeltaSegmentBuilder()
    builder.add_name("gone.com")
    builder.remove_name("gone.com")
    builder.remove_name("alpha.com")
    segment = builder.build(seq=2, base_digest="x")
    assert len(segment) == 0
    assert segment.tombstones == ["gone.com", "alpha.com"]
    assert segment.seq == 2 and segment.base_digest == "x"


def test_builder_readd_after_remove_keeps_tombstone():
    builder = DeltaSegmentBuilder()
    builder.remove_name("back.com")
    builder.add_name("back.com", ip="10.9.9.9")
    segment = builder.build(seq=1, base_digest="x")
    # the re-add is in the net adds AND the removal is tombstoned, so
    # replay moves the name to the end of the union — ZoneStore order
    assert [row[0] for row in segment.rows()] == ["back.com"]
    assert segment.tombstones == ["back.com"]


def test_segment_file_round_trip(tmp_path):
    builder = DeltaSegmentBuilder()
    builder.add_name("filed.com")
    builder.remove_name("alpha.com")
    path = tmp_path / "seg.pzon"
    written = builder.write(path, seq=3, base_digest="digest")
    loaded = DeltaSegment.load(path)
    assert loaded.seq == written.seq == 3
    assert loaded.tombstones == ["alpha.com"]
    assert loaded.content_digest == written.content_digest
    loaded.verify()
    assert is_delta_file(path)
    base = base_zone()
    base_path = tmp_path / "base.pzon"
    base.save(base_path)
    assert not is_delta_file(base_path)


def test_plain_packed_zone_is_not_a_segment():
    with pytest.raises(ValueError):
        DeltaSegment(base_zone())


# ----------------------------------------------------------------------
# segmented read protocol
# ----------------------------------------------------------------------

def chain_with_changes():
    base = base_zone()
    first = DeltaSegmentBuilder()
    first.add_name("delta.pw", ip="4.4.4.4")
    first.remove_name("beta.net")
    second = DeltaSegmentBuilder()
    second.add_name("login.delta.pw", ip="4.4.4.5")
    second.add_name("alpha.com", ip="9.9.9.9")     # replace in place
    digest = base.content_digest
    return base, [first.build(1, digest), second.build(2, digest)]


def test_segmented_matches_zonestore_replay():
    base, deltas = chain_with_changes()
    segmented = SegmentedZone(base, deltas)
    oracle = ZoneStore()
    for name, ip in BASE_NAMES:
        oracle.add_name(name, ip=ip)
    oracle.add_name("delta.pw", ip="4.4.4.4")
    oracle.remove("beta.net")
    oracle.add_name("login.delta.pw", ip="4.4.4.5")
    oracle.add_name("alpha.com", ip="9.9.9.9")

    assert len(segmented) == len(oracle)
    assert [r.name for r in segmented] == [r.name for r in oracle]
    assert list(segmented.registered_domains()) == \
        list(oracle.registered_domains())
    assert segmented.get("alpha.com").ip == "9.9.9.9"
    assert segmented.get("beta.net") is None
    assert "beta.net" not in segmented
    assert segmented.has_registered_domain("delta.pw")
    assert not segmented.has_registered_domain("beta.net")
    assert segmented.names_under("delta.pw") == \
        ["delta.pw", "login.delta.pw"]
    assert segmented.stats() == oracle.stats()


def test_segmented_digest_and_compaction_identity():
    base, deltas = chain_with_changes()
    segmented = SegmentedZone(base, deltas)
    segmented.verify()
    compacted = segmented.compacted()
    oracle = ZoneStore()
    for record in segmented:
        oracle.add_name(record.name, ip=record.ip, source=record.source)
    assert compacted.to_bytes() == pack_zone(oracle).to_bytes()
    # the chain digest is content-addressed but distinct from the
    # compacted snapshot's digest (computable without replay)
    assert segmented.content_digest != compacted.content_digest
    assert SegmentedZone(base, deltas).content_digest == \
        segmented.content_digest


def test_registered_ids_overlay():
    base, deltas = chain_with_changes()
    segmented = SegmentedZone(base, deltas)
    ids = segmented.registered_ids(
        ["alpha.com", "www.alpha.com", "beta.net", "delta.pw",
         "login.delta.pw", "unknown.io"])
    assert ids[0] == ids[1] >= 0                  # base member, by reg
    assert ids[2] == -1                           # tombstoned base reg
    assert ids[3] == ids[4] >= base.n_registered  # delta-added, synthetic
    assert ids[5] == -1                           # never present


def test_strict_chain_validation():
    base, deltas = chain_with_changes()
    other = base_zone([("different.com", "8.8.8.8")])
    with pytest.raises(ValueError):
        SegmentedZone(other, deltas)              # wrong base digest
    with pytest.raises(ValueError):
        SegmentedZone(base, [deltas[1], deltas[0]])   # out of order
    # strict=False accepts both (the reopen path after compaction)
    assert len(SegmentedZone(other, deltas, strict=False)) > 0


def test_segmented_verify_covers_every_constituent(tmp_path):
    base, deltas = chain_with_changes()
    corrupt = bytearray(deltas[1].zone.to_bytes())
    corrupt[-1] ^= 0xFF
    broken = DeltaSegment(PackedZone.from_bytes(bytes(corrupt)))
    segmented = SegmentedZone(base, [deltas[0], broken], strict=False)
    with pytest.raises(PackedZoneCorruptError):
        segmented.verify()


def test_compact_empty_deltas_is_identity():
    base = base_zone()
    assert compact(base, []) is base


def test_compact_empty_segment_is_byte_identity():
    # a sealed segment with no net adds and no tombstones (every op
    # cancelled inside the window) must not perturb a single byte
    base = base_zone()
    builder = DeltaSegmentBuilder()
    builder.add_name("flash.com", ip="10.0.0.5")
    builder.remove_name("flash.com")
    segment = builder.build(1, base.content_digest)
    assert len(segment) == 0 and segment.tombstones == ["flash.com"]
    compacted = compact(base, [segment])
    # the tombstone names a domain the base never had, so the replayed
    # union is exactly the base
    assert compacted.to_bytes() == base.to_bytes()

    empty = DeltaSegmentBuilder().build(2, base.content_digest)
    assert len(empty) == 0 and empty.tombstones == []
    assert compact(base, [empty]).to_bytes() == base.to_bytes()


def test_tombstone_for_never_registered_domain_is_noop():
    base = base_zone()
    builder = DeltaSegmentBuilder()
    builder.remove_name("never-was-here.io")
    builder.add_name("delta.pw", ip="4.4.4.4")
    segment = builder.build(1, base.content_digest)
    assert "never-was-here.io" in segment.tombstones

    segmented = SegmentedZone(base, [segment])
    oracle = ZoneStore()
    for name, ip in BASE_NAMES:
        oracle.add_name(name, ip=ip)
    oracle.add_name("delta.pw", ip="4.4.4.4")
    assert [r.name for r in segmented] == [r.name for r in oracle]
    assert compact(base, [segment]).to_bytes() == \
        pack_zone(oracle).to_bytes()


def test_reregistration_after_tombstone_within_one_chain():
    # takedown in segment 1, drop-catch in segment 2: the re-registered
    # name must move to the END of the union (ZoneStore re-add order),
    # and compaction must agree with the raw-event oracle byte for byte
    base = base_zone()
    digest = base.content_digest
    first = DeltaSegmentBuilder()
    first.remove_name("beta.net")
    second = DeltaSegmentBuilder()
    second.add_name("beta.net", ip="66.6.6.6")
    segments = [first.build(1, digest), second.build(2, digest)]

    oracle = ZoneStore()
    for name, ip in BASE_NAMES:
        oracle.add_name(name, ip=ip)
    oracle.remove("beta.net")
    oracle.add_name("beta.net", ip="66.6.6.6")

    segmented = SegmentedZone(base, segments)
    assert [r.name for r in segmented] == [r.name for r in oracle]
    assert [r.name for r in segmented][-1] == "beta.net"
    assert segmented.get("beta.net").ip == "66.6.6.6"
    assert compact(base, segments).to_bytes() == pack_zone(oracle).to_bytes()


# ----------------------------------------------------------------------
# Hypothesis: compaction is byte-identical to packing the union
# ----------------------------------------------------------------------

POOL = ["a.com", "www.a.com", "b.net", "login.b.net", "c.org",
        "d.pw", "m.d.pw", "e.xyz"]

ops_strategy = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=len(POOL) - 1)),
    min_size=0, max_size=40)


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy,
       cut=st.integers(min_value=0, max_value=40),
       split=st.integers(min_value=0, max_value=40))
def test_compact_byte_identical_to_union_pack(ops, cut, split):
    """compact(base + deltas) == one PZON snapshot of the replayed union,
    including tombstoned (removed) records, for random event tapes."""
    events = [("add" if is_add else "remove", POOL[idx])
              for is_add, idx in ops]
    cut = min(cut, len(events))
    base_events, stream = events[:cut], events[cut:]
    split = min(split, len(stream))

    base_store = ZoneStore()
    for kind, name in base_events:
        if kind == "add":
            base_store.add_name(name, ip="10.0.0.1")
        elif name in base_store:
            base_store.remove(name)
    base = pack_zone(base_store)

    segments = []
    for chunk in (stream[:split], stream[split:]):
        builder = DeltaSegmentBuilder()
        for kind, name in chunk:
            if kind == "add":
                builder.add_name(name, ip="10.0.0.1")
            else:
                builder.remove_name(name)
        segments.append(builder.build(len(segments) + 1,
                                      base.content_digest))

    oracle = ZoneStore()
    for kind, name in events:
        if kind == "add":
            oracle.add_name(name, ip="10.0.0.1")
        elif name in oracle:
            oracle.remove(name)

    assert compact(base, segments).to_bytes() == pack_zone(oracle).to_bytes()
