"""Abuse reporting / takedown simulation (§7)."""

import numpy as np
import pytest

from repro.phishworld.takedown import (
    CaptchaFailed,
    RateLimitExceeded,
    ReportingCampaign,
    SafeBrowsingPortal,
)


def portal(**kwargs):
    defaults = dict(max_per_window=5, window_minutes=60.0,
                    captcha_pass_rate=1.0)
    defaults.update(kwargs)
    return SafeBrowsingPortal(np.random.default_rng(3), **defaults)


class TestPortal:
    def test_accepts_within_limit(self):
        p = portal()
        for i in range(5):
            p.submit(f"http://x{i}.com/", now_minutes=float(i))
        assert len(p.submissions) == 5

    def test_rate_limit_rejects_sixth(self):
        p = portal()
        for i in range(5):
            p.submit(f"http://x{i}.com/", now_minutes=float(i))
        with pytest.raises(RateLimitExceeded):
            p.submit("http://x5.com/", now_minutes=5.0)

    def test_window_slides(self):
        p = portal()
        for i in range(5):
            p.submit(f"http://x{i}.com/", now_minutes=float(i))
        # 61 minutes later the first submission left the window
        p.submit("http://late.com/", now_minutes=61.0)
        assert len(p.submissions) == 6

    def test_captcha_failures_raise(self):
        p = portal(captcha_pass_rate=0.0)
        with pytest.raises(CaptchaFailed):
            p.submit("http://x.com/", now_minutes=0.0)
        assert p.submissions == []

    def test_takedowns_respect_delay(self):
        p = portal(review_rate=1.0, takedown_rate_given_review=1.0,
                   mean_review_delay_days=5.0)
        p.submit("http://x.com/", now_minutes=0.0)
        delay = p.submissions[0].review_delay_days
        assert p.takedowns_by_day(delay + 0.1) == ["http://x.com/"]
        assert p.takedowns_by_day(max(0.0, delay - 0.1)) == []


class TestCampaign:
    def test_clears_full_list_with_stalls(self):
        p = portal()
        campaign = ReportingCampaign(p, minutes_per_submission=1.0)
        stats = campaign.run([f"http://p{i}.com/" for i in range(25)])
        assert stats.accepted == 25
        assert stats.rate_limit_stalls > 0          # the limit bites
        # 25 urls at 5/hour cannot finish in under ~4 hours
        assert stats.elapsed_hours > 3.0

    def test_captcha_retry_budget(self):
        p = portal(captcha_pass_rate=0.0)
        campaign = ReportingCampaign(p, max_captcha_retries=2)
        stats = campaign.run(["http://a.com/", "http://b.com/"])
        assert stats.accepted == 0
        assert stats.captcha_failures == 4

    def test_large_campaign_scale(self):
        """The paper's ~1,000-URL manual campaign takes days."""
        p = SafeBrowsingPortal(np.random.default_rng(9), max_per_window=10,
                               window_minutes=60.0, captcha_pass_rate=0.97)
        campaign = ReportingCampaign(p)
        stats = campaign.run([f"http://u{i:04d}.com/" for i in range(300)])
        assert stats.accepted >= 290
        assert stats.elapsed_hours > 24.0
        assert 0 <= stats.taken_down_30d <= stats.accepted
