"""World builder: composition, determinism, ground truth coherence."""

from collections import Counter

import pytest

from repro.phishworld.world import WorldConfig, build_world
from repro.squatting.types import SquatType
from repro.web.server import SiteBehavior


class TestComposition:
    def test_every_site_has_a_zone_record(self, micro_world):
        for site in micro_world.host.sites():
            assert micro_world.zone.get(site.domain) is not None, site.domain

    def test_brand_originals_hosted(self, micro_world):
        for brand in list(micro_world.catalog)[:20]:
            site = micro_world.host.get(brand.domain)
            assert site is not None
            assert site.label == "original"

    def test_squat_population_size(self, micro_world):
        assert len(micro_world.squat_truth) == micro_world.config.n_squat_domains

    def test_phishing_population_size(self, micro_world):
        assert len(micro_world.phishing_sites) == micro_world.config.n_phish_domains

    def test_phishing_sites_labelled(self, micro_world):
        for record in micro_world.phishing_sites:
            assert micro_world.label_of(record.domain) == "phishing"

    def test_squat_type_mix_is_combo_heavy(self, micro_world):
        counts = Counter(t for _, t in micro_world.squat_truth.values())
        assert counts[SquatType.COMBO] == max(counts.values())

    def test_all_five_types_present_among_phish(self, micro_world):
        types = {r.squat_type for r in micro_world.phishing_sites}
        assert types == set(SquatType)

    def test_seeded_case_studies_present(self, micro_world):
        for domain in ("goog1e.nl", "facebook-c.com", "mobile-adp.com",
                       "go-uberfreight.com", "tacebook.ga"):
            assert micro_world.label_of(domain) == "phishing", domain

    def test_phishing_ips_allocated(self, micro_world):
        for record in micro_world.phishing_sites:
            assert micro_world.geoip.country(record.ip) is not None

    def test_whois_covers_phishing_domains(self, micro_world):
        for record in micro_world.phishing_sites[:20]:
            assert micro_world.whois.lookup(record.domain) is not None

    def test_phishtank_reports_are_hosted(self, micro_world):
        hosted = sum(
            1 for report in micro_world.phishtank.generate()
            if micro_world.host.get(report.domain) is not None
        )
        assert hosted >= 0.95 * len(micro_world.phishtank.generate())

    def test_brand_rank_assignment(self, micro_world):
        assert micro_world.alexa.rank("google.com") <= 702
        assert micro_world.alexa.is_ranked("facebook.com")


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = WorldConfig(seed=5, n_organic_domains=50, n_squat_domains=60,
                             n_phish_domains=6, phishtank_reports=30)
        a = build_world(config)
        b = build_world(config)
        assert sorted(r.name for r in a.zone) == sorted(r.name for r in b.zone)
        assert a.phishing_domains() == b.phishing_domains()

    def test_different_seed_different_world(self):
        base = dict(n_organic_domains=50, n_squat_domains=60,
                    n_phish_domains=6, phishtank_reports=30)
        a = build_world(WorldConfig(seed=5, **base))
        b = build_world(WorldConfig(seed=6, **base))
        assert sorted(r.name for r in a.zone) != sorted(r.name for r in b.zone)


class TestScaling:
    def test_scaled_config(self):
        config = WorldConfig().scaled(0.1)
        assert config.n_squat_domains == 800
        assert config.n_phish_domains == 24
        assert config.seed == WorldConfig().seed

    def test_liveness_rate_shape(self, micro_world):
        """~55% of squat domains are live (Table 2)."""
        live = 0
        for domain in micro_world.squat_truth:
            site = micro_world.host.get(domain)
            if site is not None and site.behavior != SiteBehavior.DEAD:
                live += 1
        rate = live / len(micro_world.squat_truth)
        assert 0.42 < rate < 0.68
