"""Remaining coverage: profile constants, alexa category listings, report
thresholds, screenshot helpers."""

import numpy as np
import pytest

from repro.brands.alexa import TOP_SITES_PER_CATEGORY, category_top_sites
from repro.ml.metrics import classification_report
from repro.web.http import CRAWL_PROFILES, MOBILE_UA, WEB_UA
from repro.web.screenshot import Screenshot


class TestCrawlProfiles:
    def test_two_profiles_as_in_paper(self):
        assert len(CRAWL_PROFILES) == 2
        assert CRAWL_PROFILES == (WEB_UA, MOBILE_UA)

    def test_headers_identify_browsers(self):
        assert "Chrome/65" in WEB_UA.header       # §3.2: Chrome 65
        assert "iPhone" in MOBILE_UA.header       # §3.2: iPhone 6


class TestAlexaCategories:
    def test_category_listing_size(self):
        names = [f"brand{i}" for i in range(120)]
        listing = category_top_sites(names, "finance")
        assert len(listing) == TOP_SITES_PER_CATEGORY

    def test_listing_is_deterministic_per_category(self):
        names = [f"brand{i}" for i in range(80)]
        assert category_top_sites(names, "games") == category_top_sites(names, "games")
        assert category_top_sites(names, "games") != category_top_sites(names, "health")

    def test_small_pools_return_everything(self):
        names = ["a", "b", "c"]
        assert sorted(category_top_sites(names, "arts")) == names


class TestReportThresholds:
    def test_threshold_moves_operating_point(self):
        y = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.6, 0.55, 0.1])
        strict = classification_report(y, scores, threshold=0.7)
        loose = classification_report(y, scores, threshold=0.5)
        assert strict.false_negative_rate > loose.false_negative_rate
        assert strict.false_positive_rate <= loose.false_positive_rate
        # AUC is threshold-independent
        assert strict.auc == loose.auc


class TestScreenshotHelpers:
    def test_ink_ratio_bounds(self):
        black = Screenshot(pixels=np.zeros((10, 10), dtype=np.uint8))
        white = Screenshot(pixels=np.full((10, 10), 255, dtype=np.uint8))
        assert black.ink_ratio() == 1.0
        assert white.ink_ratio() == 0.0

    def test_crop_clamps_to_bounds(self):
        shot = Screenshot(pixels=np.zeros((10, 10), dtype=np.uint8))
        cropped = shot.crop(8, 8, 10, 10)
        assert cropped.pixels.shape == (2, 2)

    def test_crop_negative_origin(self):
        shot = Screenshot(pixels=np.zeros((10, 10), dtype=np.uint8))
        cropped = shot.crop(-5, -5, 4, 4)
        assert cropped.pixels.shape == (4, 4)
