"""Random Forest / decision tree feature importances."""

import numpy as np
import pytest

from repro.ml import DecisionTree, RandomForest


def informative_data(n=300, d=12, seed=2):
    """Only features 0 and 1 carry label signal."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = ((x[:, 0] + 0.8 * x[:, 1]) > 0).astype(int)
    return x, y


class TestTreeImportance:
    def test_sums_to_one(self):
        x, y = informative_data()
        tree = DecisionTree(max_depth=6).fit(x, y)
        assert tree.feature_importances.sum() == pytest.approx(1.0)

    def test_informative_features_dominate(self):
        x, y = informative_data()
        tree = DecisionTree(max_depth=6).fit(x, y)
        importances = tree.feature_importances
        assert importances[0] + importances[1] > 0.6

    def test_stump_has_zero_importance(self):
        x, y = informative_data(n=50)
        tree = DecisionTree(max_depth=0).fit(x, y)
        assert tree.feature_importances.sum() == 0.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            _ = DecisionTree().feature_importances


class TestForestImportance:
    def test_normalized(self):
        x, y = informative_data()
        forest = RandomForest(n_trees=8, max_depth=6).fit(x, y)
        assert forest.feature_importances.sum() == pytest.approx(1.0)

    def test_signal_features_rank_first(self):
        x, y = informative_data()
        forest = RandomForest(n_trees=12, max_depth=6).fit(x, y)
        top = forest.top_features(n=2)
        assert {index for index, _ in top} == {0, 1}

    def test_named_features(self):
        x, y = informative_data(d=3)
        names = ["alpha", "beta", "gamma"]
        forest = RandomForest(n_trees=6, max_depth=4).fit(x, y)
        top = forest.top_features(names=names, n=3)
        assert all(label in names for label, _ in top)
        assert top[0][0] in ("alpha", "beta")

    def test_importance_is_deterministic(self):
        x, y = informative_data()
        a = RandomForest(n_trees=6, seed=9).fit(x, y).feature_importances
        b = RandomForest(n_trees=6, seed=9).fit(x, y).feature_importances
        assert np.allclose(a, b)
