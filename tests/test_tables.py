"""Table data producers (unit level, hand-built crawl snapshots)."""

import pytest

from repro.analysis.tables import (
    BrandRedirectRow,
    brand_redirect_rows,
    crawl_stats,
    example_phish_domains,
    liveness_matrix,
    wild_detection_rows,
)
from repro.brands import Brand, BrandCatalog
from repro.core.pipeline import PipelineResult, VerifiedPhish, WildDetection
from repro.squatting.types import SquatMatch, SquatType
from repro.web.crawler import CrawlResult, CrawlSnapshot


class FakeCapture:
    """Minimal stand-in for a PageCapture in redirect accounting."""

    def __init__(self, final_domain):
        self.final_url = f"http://{final_domain}/"
        self.redirect_chain = ("hop",) if final_domain else ()

    @property
    def was_redirected(self):
        return bool(self.redirect_chain)

    @property
    def final_domain(self):
        return self.final_url.split("//")[1].rstrip("/")


def crawl_result(domain, profile, live=True, final=None, snapshot=0):
    capture = None
    if live:
        capture = FakeCapture(final or domain)
        if final is None:
            capture.redirect_chain = ()
    return CrawlResult(domain=domain, profile=profile, snapshot=snapshot,
                       live=live, capture=capture)


@pytest.fixture()
def catalog():
    return BrandCatalog([
        Brand(name="facebook", domain="facebook.com"),
        Brand(name="paypal", domain="paypal.com"),
    ])


@pytest.fixture()
def matches():
    return [
        SquatMatch("facebook-a.com", "facebook", SquatType.COMBO),
        SquatMatch("facebook-b.com", "facebook", SquatType.COMBO),
        SquatMatch("facebook-c.net", "facebook", SquatType.COMBO),
        SquatMatch("paypal-x.com", "paypal", SquatType.COMBO),
        SquatMatch("paypal-y.com", "paypal", SquatType.COMBO),
        SquatMatch("paypal-z.com", "paypal", SquatType.COMBO),
    ]


@pytest.fixture()
def snapshot(matches):
    snap = CrawlSnapshot(snapshot=0)
    specs = {
        "facebook-a.com": ("live", None),
        "facebook-b.com": ("live", "facebook.com"),   # defensive redirect
        "facebook-c.net": ("dead", None),
        "paypal-x.com": ("live", "sedo.com"),          # marketplace
        "paypal-y.com": ("live", "elsewhere.net"),     # other
        "paypal-z.com": ("live", None),
    }
    for domain, (state, final) in specs.items():
        for profile in ("web", "mobile"):
            snap.results[(domain, profile)] = crawl_result(
                domain, profile, live=state == "live", final=final)
    return snap


class TestCrawlStats:
    def test_buckets(self, snapshot, matches, catalog):
        rows = crawl_stats(snapshot, matches, catalog)
        web = rows[0]
        assert web.profile == "web"
        assert web.live_domains == 5
        assert web.no_redirect == 2
        assert web.redirect_original == 1
        assert web.redirect_market == 1
        assert web.redirect_other == 1

    def test_ignores_unmatched_domains(self, snapshot, matches, catalog):
        snapshot.results[("unrelated.com", "web")] = crawl_result(
            "unrelated.com", "web")
        rows = crawl_stats(snapshot, matches, catalog)
        assert rows[0].live_domains == 5


class TestBrandRedirects:
    def test_destination_ranking(self, snapshot, matches, catalog):
        rows = brand_redirect_rows(snapshot, matches, catalog,
                                   destination="market", top_n=5, min_live=1,
                                   min_redirecting=1)
        assert rows[0].brand == "paypal"
        rows = brand_redirect_rows(snapshot, matches, catalog,
                                   destination="original", top_n=5, min_live=1,
                                   min_redirecting=1)
        assert rows[0].brand == "facebook"

    def test_min_live_filter(self, snapshot, matches, catalog):
        rows = brand_redirect_rows(snapshot, matches, catalog,
                                   destination="market", min_live=10)
        assert rows == []


class TestWildDetectionRows:
    def make_result(self):
        flagged = [
            WildDetection("a.com", "facebook", SquatType.COMBO, "web", 0.9, None),
            WildDetection("a.com", "facebook", SquatType.COMBO, "mobile", 0.9, None),
            WildDetection("b.com", "paypal", SquatType.TYPO, "web", 0.8, None),
            WildDetection("c.com", "paypal", SquatType.TYPO, "mobile", 0.7, None),
        ]
        verified = [
            VerifiedPhish("a.com", "facebook", SquatType.COMBO, ("mobile", "web")),
            VerifiedPhish("c.com", "paypal", SquatType.TYPO, ("mobile",)),
        ]
        return PipelineResult(
            squat_matches=[], crawl_snapshots=[], ground_truth=[],
            cv_reports={}, flagged=flagged, verified=verified,
            evasion_squatting=[], evasion_reported=[],
        )

    def test_populations(self):
        rows = wild_detection_rows(self.make_result(), total_squat_domains=100)
        web, mobile, union = rows
        assert web.classified_phishing == 2      # a.com, b.com
        assert web.confirmed == 1                # a.com
        assert mobile.classified_phishing == 2   # a.com, c.com
        assert mobile.confirmed == 2
        assert union.classified_phishing == 3
        assert union.confirmed == 2
        assert union.related_brands == 2

    def test_result_helpers(self):
        result = self.make_result()
        assert result.verified_domains() == ["a.com", "c.com"]
        assert len(result.flagged_by_profile("web")) == 2
        assert len(result.verified_by_profile("mobile")) == 2


class TestExamplesAndLiveness:
    def test_example_rows_capped_per_brand(self):
        verified = [
            VerifiedPhish(f"g{i}.com", "google", SquatType.COMBO, ("web",))
            for i in range(5)
        ]
        rows = example_phish_domains(verified, per_brand=2)
        assert len(rows) == 2

    def test_liveness_matrix_fallback_profile(self):
        snap = CrawlSnapshot(snapshot=0)
        snap.results[("m.com", "mobile")] = crawl_result("m.com", "mobile")
        rows = liveness_matrix([snap], ["m.com", "gone.com"])
        assert rows[0] == ("m.com", ["Live"])
        assert rows[1] == ("gone.com", ["-"])
