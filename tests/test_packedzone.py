"""Packed columnar zone snapshots: protocol, round-trips, scan equality.

The contract under test (DESIGN.md §11): a ``PackedZone`` is a pure
*representation* change — every read the detector, crawler, or fault
injector performs must answer exactly as the dict-backed ``ZoneStore``
would, and every scan path (serial kernel, mmap pool, dict reference)
must produce byte-identical matches and counts.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.brands import build_paper_catalog
from repro.dns.packedzone import (
    PackedZone,
    PackedZoneBuilder,
    is_packed_file,
    pack_zone,
)
from repro.dns.records import DNSRecord, split_domain
from repro.dns.zone import ZoneStore
from repro.squatting.detector import SquattingDetector
from repro.stages import digest_squat_matches

NAMES = [
    ("facebook.com", "1.1.1.1"),
    ("www.facebook.com", "1.1.1.2"),
    ("facebook.audi", "2.2.2.2"),
    ("faceb00k.pw", "3.3.3.3"),
    ("vice.com", "4.4.4.4"),
    ("xn--fcebook-8va.com", "5.5.5.5"),
]


@pytest.fixture(scope="module")
def detector():
    return SquattingDetector(build_paper_catalog())


def both_stores(names=NAMES):
    zone = ZoneStore()
    builder = PackedZoneBuilder()
    for name, ip in names:
        zone.add_name(name, ip=ip)
        builder.add_name(name, ip=ip)
    return zone, builder.build()


# ----------------------------------------------------------------------
# read protocol equivalence
# ----------------------------------------------------------------------

def test_packed_matches_dict_protocol():
    zone, packed = both_stores()
    assert len(packed) == len(zone)
    assert sorted(r.name for r in packed) == sorted(r.name for r in zone)
    assert "facebook.com" in packed and "FACEBOOK.COM" in packed
    assert "nonexistent.com" not in packed
    assert packed.get("faceb00k.pw").ip == "3.3.3.3"
    assert packed.get("nonexistent.com") is None
    assert packed.resolve("facebook.audi").ip == "2.2.2.2"
    assert packed.has_registered_domain("facebook.com")
    assert packed.names_under("facebook.com") == zone.names_under("facebook.com")
    assert packed.registered_domains_with_core("facebook") == \
        zone.registered_domains_with_core("facebook")
    assert packed.stats() == zone.stats()
    assert dict(packed.core_labels()) == dict(zone.core_labels())


def test_registered_domains_preserve_first_seen_order():
    # scan digests depend on iterating registered domains in dict-insertion
    # order; the packed store must intern in exactly that order
    zone, packed = both_stores()
    assert list(packed.registered_domains()) == list(zone.registered_domains())


def test_add_replaces_existing_record():
    zone, _ = both_stores()
    builder = PackedZoneBuilder()
    for name, ip in NAMES:
        builder.add_name(name, ip=ip)
    builder.add_name("facebook.com", ip="9.9.9.9")
    zone.add_name("facebook.com", ip="9.9.9.9")
    packed = builder.build()
    assert len(packed) == len(zone)
    assert packed.get("facebook.com").ip == "9.9.9.9"
    assert list(packed.registered_domains()) == list(zone.registered_domains())


def test_non_canonical_ips_round_trip():
    builder = PackedZoneBuilder()
    builder.add_name("a.com", ip="010.0.0.1")       # leading zero
    builder.add_name("b.com", ip="dead::beef")       # not IPv4 at all
    builder.add_name("c.com", ip="1.2.3.4")          # canonical
    packed = builder.build()
    assert packed.get("a.com").ip == "010.0.0.1"
    assert packed.get("b.com").ip == "dead::beef"
    assert packed.get("c.com").ip == "1.2.3.4"
    reloaded = PackedZone.from_bytes(packed.to_bytes())
    assert reloaded.get("b.com").ip == "dead::beef"


def test_add_record_and_pack_zone_equivalence():
    zone = ZoneStore()
    builder = PackedZoneBuilder()
    for name, ip in NAMES:
        record = DNSRecord(name=name, ip=ip, source="zone")
        zone.add(record)
        builder.add(record)
    from_builder = builder.build()
    from_pack = pack_zone(zone)
    assert from_builder.content_digest == from_pack.content_digest
    assert pack_zone(from_pack) is from_pack  # idempotent


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------

def test_save_load_digest_stable(tmp_path):
    _, packed = both_stores()
    path = tmp_path / "zone.pzon"
    packed.save(path)
    assert is_packed_file(path)
    assert not is_packed_file(__file__)
    loaded = PackedZone.load(path)
    assert loaded.content_digest == packed.content_digest
    assert list(loaded.registered_domains()) == list(packed.registered_domains())
    assert loaded.to_bytes() == packed.to_bytes()


def test_pickle_round_trip():
    _, packed = both_stores()
    clone = pickle.loads(pickle.dumps(packed))
    assert clone.content_digest == packed.content_digest
    assert clone.get("vice.com").ip == "4.4.4.4"


def test_corrupt_payload_rejected():
    _, packed = both_stores()
    packed.verify()  # intact snapshot passes
    blob = bytearray(packed.to_bytes())
    blob[-1] ^= 0xFF
    with pytest.raises(ValueError):
        PackedZone.from_bytes(bytes(blob)).verify()
    with pytest.raises(ValueError):
        PackedZone.from_bytes(b"not a snapshot")  # bad magic


def test_flipped_payload_byte_raises_typed_error():
    from repro.dns.packedzone import PackedZoneCorruptError

    _, packed = both_stores()
    blob = bytearray(packed.to_bytes())
    blob[-1] ^= 0xFF
    with pytest.raises(PackedZoneCorruptError):
        PackedZone.from_bytes(bytes(blob)).verify()
    # the typed error subclasses ValueError, so existing callers keep
    # catching it
    assert issubclass(PackedZoneCorruptError, ValueError)


def test_truncated_payload_raises_typed_error_not_numpy():
    from repro.dns.packedzone import PackedZoneCorruptError

    _, packed = both_stores()
    blob = packed.to_bytes()
    # header + meta intact, payload cut short: section mapping must fail
    # with the typed error at load, never a numpy buffer exception
    with pytest.raises(PackedZoneCorruptError):
        PackedZone.from_bytes(blob[:len(blob) - 64])


def test_truncated_meta_raises_typed_error():
    from repro.dns.packedzone import PackedZoneCorruptError

    _, packed = both_stores()
    blob = packed.to_bytes()
    # magic + declared meta length intact, meta JSON itself cut short
    with pytest.raises(PackedZoneCorruptError):
        PackedZone.from_bytes(blob[:56])


# ----------------------------------------------------------------------
# split_domain memoization (satellite: no behavior change)
# ----------------------------------------------------------------------

def test_split_domain_memoized_behavior_unchanged():
    assert split_domain("WWW.Facebook.COM.") == split_domain("www.facebook.com")
    assert split_domain("faceb00k.pw") == ("faceb00k", "pw")
    assert split_domain("a.b.co.uk") == split_domain("b.co.uk")
    # repeated calls must hit the LRU, not recompute
    from repro.dns.records import _split_normalized
    before = _split_normalized.cache_info().hits
    split_domain("www.facebook.com")
    split_domain("facebook.com.")
    assert _split_normalized.cache_info().hits > before


# ----------------------------------------------------------------------
# scan equality: dict reference vs packed kernel vs mmap pool
# ----------------------------------------------------------------------

def _world_pair(n_squats=120, seed=97):
    from repro.phishworld.world import WorldConfig, build_world

    params = dict(seed=seed, n_organic_domains=n_squats,
                  n_squat_domains=n_squats, n_phish_domains=8,
                  phishtank_reports=30)
    dict_world = build_world(WorldConfig(**params))
    packed_world = build_world(WorldConfig(packed_zone=True, **params))
    return dict_world, packed_world


def test_world_builder_streams_into_packed_store(detector):
    dict_world, packed_world = _world_pair()
    assert isinstance(packed_world.zone, PackedZone)
    assert list(packed_world.zone.registered_domains()) == \
        list(dict_world.zone.registered_domains())
    reference = detector.scan(dict_world.zone)
    packed = detector.scan_sharded(packed_world.zone, workers=1)
    assert digest_squat_matches(packed) == digest_squat_matches(reference)
    assert detector.scan_counts(packed_world.zone) == \
        detector.scan_counts(dict_world.zone)


@given(st.lists(
    st.one_of(
        st.from_regex(r"[a-z][a-z0-9]{2,12}\.(com|net|org|pw)", fullmatch=True),
        st.sampled_from([
            "facebook.com", "faceb00k.com", "facebok.com", "gacebook.com",
            "xn--fcebook-8va.com", "secure-paypal.com", "paypal-login.net",
            "www.vice.com", "login.goog1e.org", "amazon.co", "tw1tter.pw",
        ]),
    ),
    min_size=1, max_size=60,
))
@settings(max_examples=50, deadline=None)
def test_packed_scan_equals_dict_scan_on_random_zones(names):
    # module-scope detector fixtures don't compose with @given, so reuse a
    # lazily built singleton instead of paying the index build per example
    detector = _cached_detector()
    zone = ZoneStore()
    builder = PackedZoneBuilder()
    for name in names:
        zone.add_name(name)
        builder.add_name(name)
    packed = builder.build()
    reference = detector.scan(zone)
    assert digest_squat_matches(detector.scan_sharded(packed, workers=1)) == \
        digest_squat_matches(reference)
    assert detector.scan_counts(packed) == detector.scan_counts(zone)


_DETECTOR = None


def _cached_detector():
    global _DETECTOR
    if _DETECTOR is None:
        _DETECTOR = SquattingDetector(build_paper_catalog())
    return _DETECTOR


@pytest.mark.slow
def test_packed_pool_scan_matches_serial(detector):
    # enough registered domains to split into multiple mmap slices, so
    # workers=2 exercises the real process pool, not the serial fallback
    names = [f"host{i:05d}x.com" for i in range(9000)]
    names[1234] = "faceb00k.com"
    names[4321] = "www.gacebook.net"
    names[7777] = "secure-paypal-login.com"
    zone = ZoneStore()
    builder = PackedZoneBuilder()
    for name in names:
        zone.add_name(name)
        builder.add_name(name)
    packed = builder.build()
    reference = detector.scan(zone)
    pooled = detector.scan_sharded(packed, workers=2)
    assert digest_squat_matches(pooled) == digest_squat_matches(reference)
    assert detector.scan_counts(packed, workers=2) == \
        detector.scan_counts(zone)


# ----------------------------------------------------------------------
# pipeline integration: the pack stage and incremental re-runs
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_packed_pipeline_digests_and_resume(tmp_path):
    from repro.core import PipelineConfig, SquatPhi
    from repro.stages import ArtifactStore

    dict_world, packed_world = _world_pair(n_squats=60)
    config = PipelineConfig(cv_folds=3, rf_trees=8)

    dict_run = SquatPhi(dict_world, config)
    dict_result = dict_run.run(follow_up_snapshots=False)
    assert "pack" not in dict_run.last_manifest.records

    store = ArtifactStore(tmp_path / "store")
    packed_run = SquatPhi(packed_world, config)
    packed_result = packed_run.run(follow_up_snapshots=False, store=store)
    assert "pack" in packed_run.last_manifest.records
    assert digest_squat_matches(packed_result.squat_matches) == \
        digest_squat_matches(dict_result.squat_matches)
    assert packed_result.verified_domains() == dict_result.verified_domains()
    # the scan stage's perf accounting rode along
    assert packed_run.perf.registered_scanned > 0
    assert packed_run.perf.scan_domains_per_second > 0

    # an unchanged zone must hit the early cut-off: pack and scan load
    # from the store instead of recomputing
    _, packed_again = _world_pair(n_squats=60)
    resumed_run = SquatPhi(packed_again, config)
    resumed = resumed_run.run(follow_up_snapshots=False, store=store,
                              resume=packed_run.run_id)
    cached = resumed_run.last_manifest.cached_stages()
    assert "pack" in cached and "scan" in cached
    assert digest_squat_matches(resumed.squat_matches) == \
        digest_squat_matches(dict_result.squat_matches)
