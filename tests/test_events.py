"""The simulated registration/CT-log event stream: determinism + replay."""

import pytest

from repro.dns.zone import ZoneStore
from repro.phishworld.events import (
    EventTapeConfig,
    ZoneEvent,
    apply_event,
    build_tape,
    digest_tape,
    event_line,
    is_weaponized_ip,
    replay_into_store,
)


def test_tape_is_pure_in_config():
    config = EventTapeConfig(seed=42, n_events=300)
    first, second = build_tape(config), build_tape(config)
    assert first == second
    assert digest_tape(first) == digest_tape(second)


def test_tape_seed_changes_tape():
    base = EventTapeConfig(seed=1, n_events=200)
    other = EventTapeConfig(seed=2, n_events=200)
    assert digest_tape(build_tape(base)) != digest_tape(build_tape(other))


def test_tape_timestamps_strictly_increase():
    tape = build_tape(EventTapeConfig(seed=3, n_events=400, rate=25.0))
    times = [event.at for event in tape]
    assert all(late > early for early, late in zip(times, times[1:]))


def test_tape_mixes_adds_and_removes():
    tape = build_tape(EventTapeConfig(seed=4, n_events=500))
    kinds = {event.kind for event in tape}
    assert kinds == {"add", "remove"}
    removes = [event for event in tape if event.kind == "remove"]
    # every takedown targets a name that was added earlier on the tape
    added = set()
    for event in tape:
        if event.kind == "add":
            added.add(event.name.lower().rstrip("."))
        else:
            assert event.name.lower().rstrip(".") in added


def test_event_line_round_trip_fields():
    event = ZoneEvent(at=1.25, kind="add", name="login.example.com",
                      ip="10.1.2.3", source="ct-log")
    line = event_line(event)
    assert line == "1.250000|add|login.example.com|10.1.2.3|A|ct-log"


def test_replay_matches_manual_store():
    tape = build_tape(EventTapeConfig(seed=5, n_events=350))
    replayed = replay_into_store(tape)
    manual = ZoneStore()
    for event in tape:
        if event.kind == "add":
            manual.add_name(event.name, ip=event.ip, source=event.source)
        else:
            name = event.name.lower().rstrip(".")
            if name in manual:
                manual.remove(name)
    assert [r.name for r in replayed] == [r.name for r in manual]


def test_replay_ignores_unknown_removes():
    events = [
        ZoneEvent(at=0.1, kind="add", name="keep.com"),
        ZoneEvent(at=0.2, kind="remove", name="never-added.com"),
        ZoneEvent(at=0.3, kind="remove", name="keep.com"),
        ZoneEvent(at=0.4, kind="add", name="keep.com", ip="10.0.0.9"),
    ]
    store = replay_into_store(events)
    assert [r.name for r in store] == ["keep.com"]
    assert store.get("keep.com").ip == "10.0.0.9"


def test_apply_event_rejects_unknown_kind():
    store = ZoneStore()
    with pytest.raises(ValueError):
        apply_event(store, ZoneEvent(at=0.0, kind="renew", name="a.com"))


# ----------------------------------------------------------------------
# lifecycle churn: re-registrations and parked -> weaponized flips
# ----------------------------------------------------------------------

def test_zero_lifecycle_shares_emit_no_lifecycle_events():
    # the default tape must look exactly like the pre-lifecycle tape:
    # no 192.0.2/24 rewrites, and explicit zeros match the defaults
    default = build_tape(EventTapeConfig(seed=9, n_events=600))
    explicit = build_tape(EventTapeConfig(
        seed=9, n_events=600, reregister_share=0.0, weaponize_share=0.0))
    assert digest_tape(default) == digest_tape(explicit)
    assert not any(is_weaponized_ip(event.ip) for event in default)


def test_weaponize_share_flips_live_names_into_the_block():
    tape = build_tape(EventTapeConfig(
        seed=10, n_events=800, weaponize_share=0.15))
    live = set()
    weaponized = 0
    for event in tape:
        name = event.name.lower().rstrip(".")
        if event.kind == "add":
            if is_weaponized_ip(event.ip):
                weaponized += 1
                assert name in live      # only live names get weaponized
            live.add(name)
        else:
            live.discard(name)
    assert weaponized > 0


def test_reregister_share_revives_taken_down_names():
    tape = build_tape(EventTapeConfig(
        seed=11, n_events=900, remove_share=0.2, reregister_share=0.2))
    removed_ever = set()
    live = set()
    revived = 0
    for event in tape:
        name = event.name.lower().rstrip(".")
        if event.kind == "remove":
            live.discard(name)
            removed_ever.add(name)
            continue
        if name in removed_ever and name not in live \
                and event.source == "zone-feed":
            revived += 1
        live.add(name)
    assert revived > 0


def test_lifecycle_tape_is_pure_in_config():
    config = EventTapeConfig(seed=12, n_events=500,
                             reregister_share=0.1, weaponize_share=0.08)
    assert digest_tape(build_tape(config)) == \
        digest_tape(build_tape(config))


def test_is_weaponized_ip_prefix():
    assert is_weaponized_ip("192.0.2.77")
    assert not is_weaponized_ip("192.0.20.1")
    assert not is_weaponized_ip("10.0.2.77")
