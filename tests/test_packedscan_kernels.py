"""In-kernel family matchers: byte-identity against the scalar cascade.

The contract under test (DESIGN.md §16): with the in-kernel matchers on
(the default) or off (the PR 5 legacy twin), at any worker count and any
legal forced label width, a packed scan / classify batch produces exactly
the verdicts the per-domain ``SquattingDetector._classify`` cascade
produces — the kernels change throughput and the fallback-rate telemetry,
never a byte of output.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.brands import build_paper_catalog
from repro.brands.catalog import Brand, BrandCatalog
from repro.dns.packedzone import PackedZoneBuilder
from repro.dns.zone import ZoneStore
from repro.squatting import packedscan
from repro.squatting.bits import (
    EDIT_EQUAL,
    EDIT_INSERTION,
    EDIT_NONE,
    EDIT_OMISSION,
    EDIT_REPETITION,
    EDIT_SUBSTITUTION,
    EDIT_TRANSPOSITION,
    BitsModel,
    edit1_profile,
    edit1_typo_details,
    pack_window_codes,
)
from repro.squatting.detector import SquattingDetector
from repro.squatting.packedscan import (
    PackedScanContext,
    packed_scan,
    packed_scan_counts,
)
from repro.squatting.typo import TypoModel
from repro.stages import digest_squat_matches


# ----------------------------------------------------------------------
# helpers: cached detectors (index builds dominate otherwise)
# ----------------------------------------------------------------------

_DETECTORS = {}


def _detector_for(domains):
    key = tuple(domains)
    detector = _DETECTORS.get(key)
    if detector is None:
        if key == ("paper",):
            detector = SquattingDetector(build_paper_catalog())
        else:
            catalog = BrandCatalog(
                Brand(name=domain.split(".")[0], domain=domain)
                for domain in domains)
            detector = SquattingDetector(catalog)
        if len(_DETECTORS) > 64:
            _DETECTORS.clear()
        _DETECTORS[key] = detector
    return detector


def _paper_detector():
    return _detector_for(("paper",))


def _build_pair(names):
    zone = ZoneStore()
    builder = PackedZoneBuilder()
    for name in names:
        zone.add_name(name)
        builder.add_name(name)
    return zone, builder.build()


# ----------------------------------------------------------------------
# adversarial corpus: every family's near-misses and hits, plus the
# unrepresentable shapes that must fall back
# ----------------------------------------------------------------------

def _adversarial_names():
    detector = _paper_detector()
    brands = sorted(detector._brand_by_label)[:40]
    swaps = {"o": "0", "l": "1", "i": "1", "e": "3", "a": "4", "s": "5",
             "u": "v", "m": "rn", "w": "vv"}
    names = []
    for i, label in enumerate(brands):
        tld = ("com", "net", "org", "pw")[i % 4]
        names.append(f"{label}.{tld}")                  # brand / wrongTLD
        names.append(f"{label}.{tld}.{tld}")            # subdomain of it
        names.append(f"secure-{label}.{tld}")           # combo token
        names.append(f"{label}{'x' * (i % 3 + 1)}.com")  # glued / near-miss
        names.append(f"{label[:4]}{'qz'[i % 2]}tail.com")  # combo-prefix miss
        for src, dst in list(swaps.items())[i % 5:i % 5 + 3]:
            if src in label:
                names.append(label.replace(src, dst, 1) + ".com")  # homograph
        if len(label) > 3:
            names.append(label[:-1] + ".com")           # omission typo
            names.append(label + label[-1] + ".com")    # repetition typo
            names.append(label[1] + label[0] + label[2:] + ".org")  # transpose
    names += [
        "xn--fcebook-8va.com", "xn--pypal-4ve.net", "xn--bogus--junk.com",
        "pаypal.com",                                   # Cyrillic а: unicode
        "plain-organic-name.com", "hyphen-rich-but-benign-name.net",
        "a.com", "ab.net", "-odd-.com",
    ] + [f"organic{i:04d}.com" for i in range(400)]
    return names


def test_kernel_scan_identical_across_workers_and_widths():
    detector = _paper_detector()
    names = _adversarial_names()
    zone, packed = _build_pair(names)
    reference = digest_squat_matches(detector.scan(zone))
    ref_counts = detector.scan_counts(zone)
    natural = PackedScanContext(detector, packed).width
    for workers in (1, 2, 4):
        for width in (None, natural + 5):
            got = packed_scan(detector, packed, workers=workers,
                              chunk_size=256, width=width)
            assert digest_squat_matches(got) == reference, \
                f"workers={workers} width={width}"
            stats = packedscan.take_last_scan_stats()
            assert stats is not None and stats.rows == packed.n_registered
            assert set(stats.fallbacks) <= {"idn", "unicode"}
            assert packed_scan_counts(detector, packed, workers=workers,
                                      chunk_size=256,
                                      width=width) == ref_counts


def test_legacy_twin_identical_and_counts_scalar_fallbacks():
    detector = _paper_detector()
    names = _adversarial_names()
    zone, packed = _build_pair(names)
    reference = digest_squat_matches(detector.scan(zone))
    got = packed_scan(detector, packed, workers=1, in_kernel=False)
    assert digest_squat_matches(got) == reference
    stats = packedscan.take_last_scan_stats()
    assert stats is not None
    # legacy mode routes every kept non-candidate row through _classify
    assert set(stats.fallbacks) == {"scalar"}
    assert stats.fallbacks["scalar"] == stats.survivors - stats.fast_hits


def test_kernel_fallback_rate_is_small_on_adversarial_corpus():
    detector = _paper_detector()
    _zone, packed = _build_pair(_adversarial_names())
    packed_scan(detector, packed, workers=1)
    stats = packedscan.take_last_scan_stats()
    # the corpus plants a handful of xn--/unicode rows on purpose; the
    # kernel must absorb everything else
    assert 0 < stats.fallback_total < 0.01 * stats.rows
    assert stats.fallback_rate < 0.01


def test_take_last_scan_stats_consumed_on_read():
    detector = _paper_detector()
    _zone, packed = _build_pair(["facebook.com", "faceb00k.com", "x.com"])
    packed_scan(detector, packed)
    assert packedscan.take_last_scan_stats() is not None
    assert packedscan.take_last_scan_stats() is None


def test_dict_scan_clears_stale_kernel_stats():
    detector = _paper_detector()
    zone, packed = _build_pair(["facebook.com", "faceb00k.com"])
    packed_scan(detector, packed)
    detector.scan_sharded(zone, workers=1)  # dict-backed: no kernel stats
    assert packedscan.take_last_scan_stats() is None


def test_classify_batch_identical_to_classify_domain():
    detector = _paper_detector()
    _zone, packed = _build_pair(["anchor.com"])
    queries = _adversarial_names()[:300] + [
        "FACEBOOK.COM.", "www.facebook.com", "login.faceb00k.net",
        ".com", "com", "", "a" * 100 + ".com", "pаypal.com",
    ]
    for in_kernel in (True, False):
        context = PackedScanContext(detector, packed, in_kernel=in_kernel)
        got = context.classify_batch(queries)
        expected = [detector.classify_domain(query) for query in queries]
        assert got == expected
    # the over-width and empty queries were counted as unrepresentable
    assert context.kernel.fallbacks.get("width", 0) >= 1
    assert context.kernel.fallbacks.get("empty", 0) >= 1


# ----------------------------------------------------------------------
# property: random catalogs × adversarial mutations stay byte-identical
# ----------------------------------------------------------------------

_BRAND_CORES = st.from_regex(r"[a-z]{4,9}", fullmatch=True)
_TLDS = ("com", "net", "org", "pw")


@st.composite
def _catalog_and_names(draw):
    cores = draw(st.lists(_BRAND_CORES, min_size=1, max_size=3, unique=True))
    domains = tuple(f"{core}.{_TLDS[i % 2]}" for i, core in enumerate(cores))
    names = []
    n_names = draw(st.integers(min_value=1, max_value=25))
    for _ in range(n_names):
        choice = draw(st.integers(min_value=0, max_value=9))
        core = draw(st.sampled_from(cores))
        tld = draw(st.sampled_from(_TLDS))
        index = draw(st.integers(min_value=0, max_value=len(core) - 1))
        char = draw(st.sampled_from("abz019-"))
        if choice == 0:
            name = f"{core}.{tld}"                          # brand/wrongTLD
        elif choice == 1:
            name = core[:index] + char + core[index + 1:] + "." + tld
        elif choice == 2:
            name = core[:index] + core[index:index + 1] * 2 \
                + core[index + 1:] + "." + tld               # repetition
        elif choice == 3:
            name = core[:index] + core[index + 1:] + "." + tld  # omission
        elif choice == 4:
            name = f"{draw(st.sampled_from(['my', 'secure', 'x']))}-{core}.{tld}"
        elif choice == 5:
            name = f"{core}{draw(_BRAND_CORES)}.{tld}"       # glued combo
        elif choice == 6:
            name = core.replace("o", "0").replace("l", "1") + "." + tld
        elif choice == 7:
            name = draw(st.from_regex(r"[a-z][a-z0-9-]{1,14}[a-z0-9]",
                                      fullmatch=True)) + "." + tld
        elif choice == 8:
            name = f"xn--{core}-8va.{tld}"                   # punycode-ish
        else:
            name = f"www.{core}.{tld}"                       # subdomain
        if ".." not in name and not name.startswith("-"):
            names.append(name)
    return domains, names or [f"{cores[0]}.com"]


@given(_catalog_and_names())
@settings(max_examples=30, deadline=None)
def test_property_kernel_equals_scalar_cascade(case):
    domains, names = case
    detector = _detector_for(domains)
    zone, packed = _build_pair(names)
    reference = detector.scan(zone)
    natural = PackedScanContext(detector, packed).width
    for width in (None, natural + 3):
        got = packed_scan(detector, packed, workers=1, width=width)
        assert digest_squat_matches(got) == digest_squat_matches(reference)
    context = PackedScanContext(detector, packed)
    queries = sorted(set(names))
    assert context.classify_batch(queries) == \
        [detector.classify_domain(query) for query in queries]


# ----------------------------------------------------------------------
# the bit-parallel edit-distance kernel against its scalar oracles
# ----------------------------------------------------------------------

def _pack_labels(labels, width=None):
    width = width or max((len(label) for label in labels), default=1)
    padded = np.zeros((len(labels), width), dtype=np.uint8)
    lens = np.zeros(len(labels), dtype=np.int64)
    for i, label in enumerate(labels):
        raw = label.encode("utf-8")
        padded[i, :len(raw)] = np.frombuffer(raw, dtype=np.uint8)
        lens[i] = len(raw)
    return padded, lens


def test_pack_window_codes_values_and_bounds():
    padded, _ = _pack_labels(["abcd", "ab"])
    codes = pack_window_codes(padded, 2)
    assert codes.shape == (2, 3)
    assert codes[0, 0] == (ord("a") << 8) | ord("b")
    assert codes[1, 1] == (ord("b") << 8)  # window into the NUL padding
    with pytest.raises(ValueError):
        pack_window_codes(padded, 9)
    with pytest.raises(ValueError):
        pack_window_codes(padded, 0)


def test_edit1_profile_known_relations():
    target = "facebook"
    labels = ["facebook", "faceb00k", "facebok", "ffacebook", "faceebook",
              "fcaebook", "facebooks", "gacebook", "totally-else", "faceboko"]
    padded, lens = _pack_labels(labels)
    codes, pos = edit1_profile(padded, lens, target)
    assert codes[0] == EDIT_EQUAL
    assert codes[1] == EDIT_NONE           # two substitutions
    assert codes[2] == EDIT_OMISSION and pos[2] == 6
    assert codes[3] == EDIT_REPETITION and pos[3] == 1
    assert codes[4] == EDIT_REPETITION
    assert codes[5] == EDIT_TRANSPOSITION and pos[5] == 1
    assert codes[6] == EDIT_INSERTION and pos[6] == 8
    assert codes[7] == EDIT_SUBSTITUTION and pos[7] == 0
    assert codes[8] == EDIT_NONE
    assert codes[9] == EDIT_TRANSPOSITION and pos[9] == 6


def test_edit1_profile_rejects_over_64_byte_targets():
    padded, lens = _pack_labels(["abc"])
    with pytest.raises(ValueError):
        edit1_profile(padded, lens, "a" * 64)


_LABELS = st.lists(st.from_regex(r"[a-z0-9-]{1,12}", fullmatch=True),
                   min_size=1, max_size=30)
_TARGETS = st.from_regex(r"[a-z0-9]{1,10}", fullmatch=True)


@given(_LABELS, _TARGETS)
@settings(max_examples=60, deadline=None)
def test_property_edit1_matches_typo_and_bits_models(labels, target):
    typo = TypoModel()
    bits = BitsModel()
    padded, lens = _pack_labels(labels, width=14)
    assert edit1_typo_details(padded, lens, target) == \
        [typo.matches(label, target) for label in labels]
    assert bits.matches_batch(padded, lens, target) == \
        [bits.matches(label, target) for label in labels]


@given(_TARGETS, st.integers(min_value=0, max_value=11),
       st.sampled_from("abz09-"))
@settings(max_examples=60, deadline=None)
def test_property_edit1_detects_planted_edits(target, index, char):
    index = index % (len(target) + 1)
    planted = [
        target,                                        # EQUAL
        target[:index] + char + target[index:],        # insertion family
    ]
    if index < len(target):
        planted.append(target[:index] + target[index + 1:])   # omission
        planted.append(target[:index] + char + target[index + 1:])
    padded, lens = _pack_labels(planted, width=12)
    codes, _pos = edit1_profile(padded, lens, target)
    assert codes[0] == EDIT_EQUAL
    assert codes[1] in (EDIT_INSERTION, EDIT_REPETITION)
    if index < len(target):
        assert codes[2] in (EDIT_OMISSION, EDIT_EQUAL)
        assert codes[3] in (EDIT_SUBSTITUTION, EDIT_EQUAL)


# ----------------------------------------------------------------------
# typo model satellites: memoized insertions, O(len) repetition check
# ----------------------------------------------------------------------

def test_keyboard_insertions_memoized_and_copied():
    model = TypoModel()
    first = model.keyboard_insertions("facebook")
    second = model.keyboard_insertions("facebook")
    assert first == second and first is not second  # defensive copies
    first.append("tampered")
    assert model.keyboard_insertions("facebook") == second


def test_matches_length_delta_short_circuit():
    model = TypoModel()
    assert model.matches("facebookxx", "facebook") is None
    assert model.matches("facebo", "facebook") is None
    assert model.matches("facebook", "facebook") is None


@given(_TARGETS, st.integers(min_value=0, max_value=9))
@settings(max_examples=60, deadline=None)
def test_property_is_repetition_equals_bruteforce(target, index):
    index = index % len(target)
    label = target[:index] + target[index] + target[index:]
    brute = any(target[:i] + target[i] + target[i:] == label
                for i in range(len(target)))
    assert TypoModel._is_repetition(label, target) == brute
    # and a genuine non-repetition stays rejected
    assert not TypoModel._is_repetition(target + "#", target)
