"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dns.idna import punycode_decode, punycode_encode
from repro.dns.records import registered_domain, split_domain
from repro.dns.zone import ZoneStore
from repro.ml.metrics import auc_score, confusion_matrix, roc_curve
from repro.ocr.font import normalize_for_font, render_text
from repro.ocr.spellcheck import damerau_levenshtein
from repro.squatting.bits import BitsModel
from repro.squatting.typo import TypoModel
from repro.vision.imagehash import average_hash, dhash, hamming_distance, phash
from repro.web.html import parse_html
from repro.web.javascript import tokenize_js

labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=2, max_size=16)
unicode_labels = st.text(
    alphabet=st.characters(min_codepoint=ord("a"), max_codepoint=0x4FF,
                           blacklist_categories=("Cs",)),
    min_size=1, max_size=12,
)


# ----------------------------------------------------------------------
# punycode
# ----------------------------------------------------------------------

@given(unicode_labels)
@settings(max_examples=200)
def test_punycode_roundtrip(label):
    assert punycode_decode(punycode_encode(label)) == label


@given(unicode_labels)
@settings(max_examples=200)
def test_punycode_matches_stdlib(label):
    assert punycode_encode(label) == label.encode("punycode").decode("ascii")


@given(unicode_labels)
def test_punycode_output_is_ascii(label):
    assert all(ord(c) < 128 for c in punycode_encode(label))


# ----------------------------------------------------------------------
# domain splitting
# ----------------------------------------------------------------------

@given(labels, labels)
def test_split_domain_total(core, sub):
    domain = f"{sub}.{core}.com"
    split_core, tld = split_domain(domain)
    assert split_core == core
    assert tld == "com"
    assert registered_domain(domain) == f"{core}.com"


# ----------------------------------------------------------------------
# zone store
# ----------------------------------------------------------------------

@given(st.lists(labels, min_size=1, max_size=30, unique=True))
def test_zone_add_then_contains(names):
    zone = ZoneStore()
    for name in names:
        zone.add_name(f"{name}.com")
    for name in names:
        assert f"{name}.com" in zone
    assert len(zone) == len(names)


@given(st.lists(labels, min_size=2, max_size=20, unique=True))
def test_zone_remove_inverse_of_add(names):
    zone = ZoneStore()
    for name in names:
        zone.add_name(f"{name}.com")
    removed = names[0]
    zone.remove(f"{removed}.com")
    assert f"{removed}.com" not in zone
    assert len(zone) == len(names) - 1


# ----------------------------------------------------------------------
# squat generate/detect duality
# ----------------------------------------------------------------------

@given(labels.filter(lambda s: 4 <= len(s) <= 12))
@settings(max_examples=50, deadline=None)
def test_typo_generated_variants_are_detected(label):
    model = TypoModel()
    for variant in sorted(model.generate(label))[:40]:
        assert model.matches(variant, label) is not None


@given(labels.filter(lambda s: 4 <= len(s) <= 12))
@settings(max_examples=50, deadline=None)
def test_bits_generated_variants_are_detected(label):
    model = BitsModel()
    for variant in sorted(model.generate(label))[:40]:
        assert model.matches(variant, label) is not None


@given(labels.filter(lambda s: len(s) >= 3))
@settings(max_examples=100)
def test_typo_never_matches_identity(label):
    assert TypoModel().matches(label, label) is None
    assert BitsModel().matches(label, label) is None


# ----------------------------------------------------------------------
# edit distance
# ----------------------------------------------------------------------

@given(st.text(max_size=12), st.text(max_size=12))
@settings(max_examples=200)
def test_edit_distance_symmetry(a, b):
    assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)


@given(st.text(max_size=12))
def test_edit_distance_identity(a):
    assert damerau_levenshtein(a, a) == 0


@given(st.text(max_size=10), st.text(max_size=10), st.text(max_size=10))
@settings(max_examples=100)
def test_edit_distance_triangle_inequality(a, b, c):
    assert damerau_levenshtein(a, c) <= (
        damerau_levenshtein(a, b) + damerau_levenshtein(b, c)
    )


@given(st.text(max_size=12), st.text(max_size=12))
def test_edit_distance_length_lower_bound(a, b):
    assert damerau_levenshtein(a, b) >= abs(len(a) - len(b))


# ----------------------------------------------------------------------
# image hashes
# ----------------------------------------------------------------------

images = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda seed: np.random.default_rng(seed).integers(0, 256, size=(32, 32)).astype(np.uint8)
)


@given(images)
@settings(max_examples=50, deadline=None)
def test_hash_self_distance_zero(image):
    for hash_fn in (average_hash, dhash, phash):
        assert hamming_distance(hash_fn(image), hash_fn(image)) == 0


@given(images, images)
@settings(max_examples=50, deadline=None)
def test_hash_distance_symmetry(a, b):
    for hash_fn in (average_hash, dhash, phash):
        assert hamming_distance(hash_fn(a), hash_fn(b)) == hamming_distance(
            hash_fn(b), hash_fn(a))


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1)),
                min_size=4, max_size=200))
@settings(max_examples=200)
def test_auc_bounds_and_confusion_totals(pairs):
    y = np.array([p[0] for p in pairs])
    scores = np.array([p[1] for p in pairs])
    if y.sum() == 0 or y.sum() == len(y):
        return  # single-class inputs are rejected by design
    auc = auc_score(y, scores)
    assert 0.0 <= auc <= 1.0
    tn, fp, fn, tp = confusion_matrix(y, scores >= 0.5)
    assert tn + fp + fn + tp == len(y)


@given(st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1)),
                min_size=4, max_size=100))
@settings(max_examples=100)
def test_roc_monotone(pairs):
    y = np.array([p[0] for p in pairs])
    scores = np.array([p[1] for p in pairs])
    if y.sum() == 0 or y.sum() == len(y):
        return
    fpr, tpr, _ = roc_curve(y, scores)
    assert (np.diff(fpr) >= 0).all()
    assert (np.diff(tpr) >= 0).all()


# ----------------------------------------------------------------------
# renderer / OCR font
# ----------------------------------------------------------------------

@given(st.text(min_size=0, max_size=30))
@settings(max_examples=100)
def test_normalize_for_font_stays_in_repertoire(text):
    from repro.ocr.font import SUPPORTED_CHARS
    assert set(normalize_for_font(text)) <= SUPPORTED_CHARS


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789 ", max_size=30))
def test_render_text_shape(text):
    strip = render_text(text)
    assert strip.shape[0] == 7
    assert strip.dtype == np.uint8
    assert set(np.unique(strip)) <= {0, 1}


# ----------------------------------------------------------------------
# parsers never raise on arbitrary input
# ----------------------------------------------------------------------

@given(st.text(max_size=300))
@settings(max_examples=200)
def test_js_tokenizer_total(source):
    tokens = tokenize_js(source)
    assert isinstance(tokens, list)


@given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=200))
@settings(max_examples=100)
def test_html_parser_is_total_on_text(markup):
    tree = parse_html(markup)
    assert tree.tag == "#document"
