"""Unit tests for the stage-graph package: graph, store, runner.

Integration-level incremental/resume behaviour of the real pipeline lives
in test_incremental.py; this module exercises the machinery in isolation
with tiny synthetic graphs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import pytest

from repro.core import PipelineConfig, SquatPhi
from repro.stages import (
    Artifact,
    ArtifactStore,
    RunManifest,
    Stage,
    StageGraph,
    StageRunner,
    code_digest,
    config_slice_digest,
)


def _digest_obj(payload):
    return hashlib.sha256(repr(payload).encode()).hexdigest()


@dataclass
class _Config:
    x: int = 1
    y: int = 2


def _make_counting_graph(calls):
    """a -> b -> c chain whose computes log their execution into ``calls``."""

    def stage_a(inputs, ctx):
        calls.append("one")
        return {"a": 10}

    def stage_b(inputs, ctx):
        calls.append("two")
        return {"b": inputs["a"] * 2}

    def stage_c(inputs, ctx):
        calls.append("three")
        return {"c": inputs["b"] + 1}

    return StageGraph([
        Stage(name="one", compute=stage_a, outputs=("a",),
              config_fields=("x",), digesters={"a": _digest_obj}),
        Stage(name="two", compute=stage_b, inputs=("a",), outputs=("b",),
              config_fields=("y",), digesters={"b": _digest_obj}),
        Stage(name="three", compute=stage_c, inputs=("b",), outputs=("c",),
              digesters={"c": _digest_obj}),
    ])


# ----------------------------------------------------------------------
# graph validation
# ----------------------------------------------------------------------

class TestStageGraph:
    def test_topological_order_is_declaration_order(self):
        graph = _make_counting_graph([])
        assert [s.name for s in graph.topological_order()] == \
            ["one", "two", "three"]

    def test_duplicate_stage_name_rejected(self):
        def emit(inputs, ctx):
            return {"a": 1}

        with pytest.raises(ValueError, match="duplicate stage"):
            StageGraph([
                Stage(name="one", compute=emit, outputs=("a",)),
                Stage(name="one", compute=emit, outputs=("b",)),
            ])

    def test_duplicate_artifact_producer_rejected(self):
        def emit(inputs, ctx):
            return {"a": 1}

        with pytest.raises(ValueError, match="produced by both"):
            StageGraph([
                Stage(name="one", compute=emit, outputs=("a",)),
                Stage(name="two", compute=emit, outputs=("a",)),
            ])

    def test_unproduced_input_rejected(self):
        def emit(inputs, ctx):
            return {"a": 1}

        with pytest.raises(ValueError, match="unproduced"):
            StageGraph([
                Stage(name="one", compute=emit, inputs=("ghost",),
                      outputs=("a",)),
            ])

    def test_cycle_rejected(self):
        def emit(inputs, ctx):
            return {}

        with pytest.raises(ValueError, match="cycle"):
            StageGraph([
                Stage(name="one", compute=emit, inputs=("b",), outputs=("a",)),
                Stage(name="two", compute=emit, inputs=("a",), outputs=("b",)),
            ])

    def test_stage_requires_outputs(self):
        def emit(inputs, ctx):
            return {}

        with pytest.raises(ValueError, match="no outputs"):
            Stage(name="one", compute=emit)

    def test_digester_for_undeclared_output_rejected(self):
        def emit(inputs, ctx):
            return {"a": 1}

        with pytest.raises(ValueError, match="undeclared"):
            Stage(name="one", compute=emit, outputs=("a",),
                  digesters={"b": _digest_obj})

    def test_downstream_closure(self):
        graph = _make_counting_graph([])
        assert graph.downstream_closure("two") == {"two", "three"}
        assert graph.downstream_closure("three") == {"three"}
        assert graph.downstream_closure("one") == {"one", "two", "three"}
        with pytest.raises(KeyError):
            graph.downstream_closure("ghost")

    def test_dependencies(self):
        graph = _make_counting_graph([])
        assert graph.dependencies("one") == set()
        assert graph.dependencies("three") == {"two"}


# ----------------------------------------------------------------------
# fingerprint primitives
# ----------------------------------------------------------------------

class TestFingerprints:
    def test_code_digest_stable_and_sensitive(self):
        def fn_a(inputs, ctx):
            return {"a": 1}

        def fn_b(inputs, ctx):
            return {"a": 2}

        assert code_digest(fn_a) == code_digest(fn_a)
        assert code_digest(fn_a) != code_digest(fn_b)

    def test_config_slice_digest_ignores_unrelated_fields(self):
        base = config_slice_digest(_Config(x=1, y=2), ("x",))
        assert config_slice_digest(_Config(x=1, y=99), ("x",)) == base
        assert config_slice_digest(_Config(x=5, y=2), ("x",)) != base

    def test_config_slice_digest_order_independent(self):
        config = _Config(x=1, y=2)
        assert config_slice_digest(config, ("x", "y")) == \
            config_slice_digest(config, ("y", "x"))

    def test_throughput_fields_are_banned_from_fingerprints(self):
        # worker counts etc. are throughput knobs: letting one into a
        # stage fingerprint would invalidate cached artifacts on resume
        from repro.stages import THROUGHPUT_FIELDS

        config = PipelineConfig()
        for field in sorted(THROUGHPUT_FIELDS):
            assert hasattr(config, field), field
            with pytest.raises(ValueError, match="throughput"):
                config_slice_digest(config, ("cv_folds", field))

    def test_pipeline_stage_slices_avoid_throughput_fields(self):
        from repro.phishworld.world import WorldConfig, build_world
        from repro.stages import THROUGHPUT_FIELDS

        tiny = build_world(WorldConfig(seed=5, n_organic_domains=5,
                                       n_squat_domains=5, n_phish_domains=2,
                                       phishtank_reports=4))
        pipeline = SquatPhi(tiny, PipelineConfig())
        for stage in pipeline.build_graph().stages.values():
            overlap = set(stage.config_fields) & THROUGHPUT_FIELDS
            assert not overlap, (stage.name, overlap)


# ----------------------------------------------------------------------
# the artifact store
# ----------------------------------------------------------------------

class TestArtifactStore:
    @pytest.mark.parametrize("on_disk", [False, True])
    def test_object_roundtrip(self, tmp_path, on_disk):
        store = ArtifactStore(tmp_path / "store" if on_disk else None)
        artifact = Artifact(name="a", digest=_digest_obj([1, 2]),
                            payload=[1, 2])
        assert not store.has(artifact.digest)
        store.put(artifact)
        assert store.has(artifact.digest)
        assert store.get(artifact.digest) == [1, 2]
        with pytest.raises(KeyError):
            store.get("0" * 64)

    def test_manifest_roundtrip_on_disk(self, tmp_path):
        store = ArtifactStore(tmp_path)
        manifest = RunManifest(run_id="run-0001", context_digest="abc")
        store.save_manifest(manifest)
        loaded = store.load_manifest("run-0001")
        assert loaded.run_id == "run-0001"
        assert loaded.context_digest == "abc"
        assert store.list_runs() == ["run-0001"]
        assert store.next_run_id() == "run-0002"
        with pytest.raises(KeyError):
            store.load_manifest("run-9999")

    def test_partial_bound_to_fingerprint(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = {"code": "c", "config": "k", "inputs": "i"}
        store.save_partial("run-0001", "crawl", fp, {"jobs": 7})
        assert store.load_partial("run-0001", "crawl", fp) == {"jobs": 7}
        stale = dict(fp, config="different")
        assert store.load_partial("run-0001", "crawl", stale) is None
        store.clear_partial("run-0001", "crawl")
        assert store.load_partial("run-0001", "crawl", fp) is None


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------

class TestStageRunner:
    def test_executes_in_order_and_times_every_stage(self):
        from repro.perf import PerfReport

        calls = []
        perf = PerfReport()
        runner = StageRunner(_make_counting_graph(calls), config=_Config(),
                             perf=perf)
        outcome = runner.run()
        assert calls == ["one", "two", "three"]
        assert outcome.payloads() == {"a": 10, "b": 20, "c": 21}
        assert set(perf.stage_seconds) == {"one", "two", "three"}
        assert not outcome.interrupted

    def test_second_run_serves_everything_from_cache(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []
        first = StageRunner(_make_counting_graph(calls), store=store,
                            config=_Config())
        outcome = first.run()

        second = StageRunner(_make_counting_graph(calls), store=store,
                             config=_Config(),
                             previous=store.load_manifest(first.run_id))
        calls.clear()
        replay = second.run(stop_after=None)
        assert calls == []                       # nothing recomputed
        assert replay.payloads() == outcome.payloads()
        assert sorted(replay.manifest.cached_stages()) == \
            ["one", "three", "two"]

    def test_config_slice_change_invalidates_dependents_only(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []
        first = StageRunner(_make_counting_graph(calls), store=store,
                            config=_Config(x=1, y=2))
        first.run()
        previous = store.load_manifest(first.run_id)

        # y only participates in stage "two"; its outputs change, which
        # invalidates "three" through the input-digest part of its
        # fingerprint even though "three" declares no config fields
        calls.clear()
        graph = _make_counting_graph(calls)

        def stage_b_v2(inputs, ctx):
            calls.append("two")
            return {"b": inputs["a"] * 3}

        graph.stages["two"].compute = stage_b_v2
        second = StageRunner(graph, store=store, config=_Config(x=1, y=3),
                             previous=previous)
        outcome = second.run()
        assert calls == ["two", "three"]
        assert outcome.payloads()["a"] == 10
        assert outcome.payloads()["c"] == 31

    def test_unchanged_output_digest_short_circuits_downstream(self, tmp_path):
        # a stage may re-run and reproduce identical bytes; its consumers
        # then stay cached (content-addressed early cut-off)
        store = ArtifactStore(tmp_path)
        calls = []
        first = StageRunner(_make_counting_graph(calls), store=store,
                            config=_Config(x=1, y=2))
        first.run()
        previous = store.load_manifest(first.run_id)

        calls.clear()
        second = StageRunner(_make_counting_graph(calls), store=store,
                             config=_Config(x=7, y=2),   # x: stage "one" only
                             previous=previous)
        second.run()
        # "one" re-ran but produced the same digest, so "two"/"three"
        # loaded from the store
        assert calls == ["one"]

    def test_from_stage_forces_downstream_closure(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []
        first = StageRunner(_make_counting_graph(calls), store=store,
                            config=_Config())
        first.run()

        calls.clear()
        second = StageRunner(_make_counting_graph(calls), store=store,
                             config=_Config(),
                             previous=store.load_manifest(first.run_id),
                             from_stage="two")
        second.run()
        assert calls == ["two", "three"]

        with pytest.raises(ValueError, match="unknown stage"):
            StageRunner(_make_counting_graph([]), store=store,
                        config=_Config(), from_stage="ghost")

    def test_stop_after_interrupts_with_saved_manifest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []
        runner = StageRunner(_make_counting_graph(calls), store=store,
                             config=_Config())
        outcome = runner.run(stop_after="two")
        assert outcome.interrupted
        assert calls == ["one", "two"]
        manifest = store.load_manifest(runner.run_id)
        assert sorted(manifest.records) == ["one", "two"]

        with pytest.raises(ValueError, match="unknown stage"):
            runner.run(stop_after="ghost")

    def test_context_digest_mismatch_refuses_resume(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = StageRunner(_make_counting_graph([]), store=store,
                            config=_Config(), context_digest="universe-a")
        first.run()
        with pytest.raises(ValueError, match="different"):
            StageRunner(_make_counting_graph([]), store=store,
                        config=_Config(),
                        previous=store.load_manifest(first.run_id),
                        context_digest="universe-b")

    def test_missing_output_raises(self):
        def lying(inputs, ctx):
            return {}

        graph = StageGraph([
            Stage(name="one", compute=lying, outputs=("a",)),
        ])
        runner = StageRunner(graph, config=_Config())
        with pytest.raises(RuntimeError, match="did not produce"):
            runner.run()


# ----------------------------------------------------------------------
# the real pipeline's graph shape
# ----------------------------------------------------------------------

class TestPipelineGraph:
    def test_declared_in_run_order(self, micro_world):
        pipe = SquatPhi(micro_world, PipelineConfig())
        graph = pipe.build_graph(follow_up_snapshots=True)
        assert [s.name for s in graph.topological_order()] == [
            "scan", "enrich", "crawl", "ground_truth", "train",
            "classify", "verify", "follow_ups", "evasion",
        ]
        no_follow = pipe.build_graph(follow_up_snapshots=False)
        assert "follow_ups" not in no_follow.stages

    def test_invalidation_closures(self, micro_world):
        pipe = SquatPhi(micro_world, PipelineConfig())
        graph = pipe.build_graph(follow_up_snapshots=True)
        assert graph.downstream_closure("train") == {
            "train", "classify", "verify", "follow_ups", "evasion"}
        assert graph.downstream_closure("verify") == {
            "verify", "follow_ups", "evasion"}
        assert graph.downstream_closure("scan") == set(graph.stages)

    def test_throughput_knobs_outside_every_config_slice(self, micro_world):
        pipe = SquatPhi(micro_world, PipelineConfig())
        graph = pipe.build_graph(follow_up_snapshots=True)
        execution_only = {"scan_workers", "crawl_workers", "capture_cache",
                          "checkpoint_interval", "enrich_workers",
                          "enrich_hedging"}
        for stage in graph.topological_order():
            assert not execution_only & set(stage.config_fields), stage.name
