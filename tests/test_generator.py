"""Unified candidate generation."""

import pytest

from repro.brands import Brand
from repro.squatting.generator import SquattingGenerator
from repro.squatting.types import SquatType


@pytest.fixture(scope="module")
def generator():
    return SquattingGenerator()


@pytest.fixture(scope="module")
def facebook():
    return Brand(name="facebook", domain="facebook.com")


def test_candidate_set_covers_enumerable_types(generator, facebook):
    candidates = generator.candidates(facebook)
    assert candidates.labels[SquatType.HOMOGRAPH]
    assert candidates.labels[SquatType.TYPO]
    assert candidates.labels[SquatType.BITS]
    assert candidates.domains[SquatType.WRONG_TLD]
    assert SquatType.COMBO not in candidates.labels  # not enumerable


def test_combo_included_on_request(generator, facebook):
    candidates = generator.candidates(facebook, include_combo=True)
    assert "facebook-login" in candidates.labels[SquatType.COMBO]


def test_types_are_disjoint(generator, facebook):
    """The paper's orthogonality: one label, one type."""
    candidates = generator.candidates(facebook)
    pools = [candidates.labels[t] for t in
             (SquatType.HOMOGRAPH, SquatType.BITS, SquatType.TYPO)]
    for i in range(len(pools)):
        for j in range(i + 1, len(pools)):
            assert not (pools[i] & pools[j])


def test_brand_label_is_never_a_candidate(generator, facebook):
    candidates = generator.candidates(facebook)
    for pool in candidates.labels.values():
        assert "facebook" not in pool


def test_priority_order_assignment(generator, facebook):
    """faceb00k is reachable via homograph (digit swap); the higher-priority
    homograph pool must claim it."""
    candidates = generator.candidates(facebook)
    assert "faceb00k" in candidates.labels[SquatType.HOMOGRAPH]
    assert "faceb00k" not in candidates.labels[SquatType.TYPO]


def test_total_counts(generator, facebook):
    candidates = generator.candidates(facebook)
    assert candidates.total() == (
        sum(len(v) for v in candidates.labels.values())
        + sum(len(v) for v in candidates.domains.values())
    )
    assert candidates.total() > 300  # a real candidate pool, not a stub
