"""Distributed crawler: scheduling, profiles, snapshots, statistics."""

import pytest

from repro.web.crawler import CrawlSnapshot, DistributedCrawler, _SharedCounter
from repro.web.html import document, el
from repro.web.http import MOBILE_UA, WEB_UA
from repro.web.server import HostedSite, SiteBehavior, WebHost


@pytest.fixture()
def host():
    host = WebHost()
    for i in range(6):
        page = document(f"Site {i}", el("p", f"content {i}"))
        host.register(HostedSite(
            domain=f"site{i}.com", behavior=SiteBehavior.CONTENT,
            provider=lambda ua, snap, p=page: p,
        ))
    host.register(HostedSite(domain="gone.com", behavior=SiteBehavior.DEAD))
    host.register(HostedSite(
        domain="moved.com", behavior=SiteBehavior.REDIRECT,
        redirect_to="http://site0.com/",
    ))
    return host


def all_domains(host):
    return sorted(site.domain for site in host.sites())


def test_crawl_covers_every_domain_and_profile(host):
    crawler = DistributedCrawler(host, workers=3)
    snapshot = crawler.crawl(all_domains(host))
    assert len(snapshot.results) == 8 * 2  # both profiles
    for profile in ("web", "mobile"):
        assert snapshot.get("site0.com", profile).live


def test_dead_domains_reported_not_live(host):
    snapshot = DistributedCrawler(host, workers=2).crawl(all_domains(host))
    result = snapshot.get("gone.com", "web")
    assert result is not None
    assert not result.live
    assert result.capture is None


def test_redirects_recorded(host):
    snapshot = DistributedCrawler(host, workers=2).crawl(["moved.com"])
    result = snapshot.get("moved.com", "web")
    assert result.live and result.redirected
    assert result.final_domain == "site0.com"


def test_worker_balance(host):
    crawler = DistributedCrawler(host, workers=4)
    snapshot = crawler.crawl(all_domains(host))
    counts = snapshot.worker_job_counts
    assert sum(counts) == 16
    assert max(counts) - min(counts) <= 1  # the shmget-style balance


def test_stats(host):
    snapshot = DistributedCrawler(host, workers=2).crawl(all_domains(host))
    stats = snapshot.stats("web")
    assert stats["total"] == 8
    assert stats["live"] == 7
    assert stats["redirected"] == 1


def test_live_domains_listing(host):
    snapshot = DistributedCrawler(host, workers=2).crawl(all_domains(host))
    live = snapshot.live_domains("mobile")
    assert "gone.com" not in live
    assert "site3.com" in live


def test_captures_listing(host):
    snapshot = DistributedCrawler(host, workers=2).crawl(all_domains(host))
    captures = snapshot.captures("web")
    assert all(r.capture is not None for r in captures)
    assert len(captures) == 7


def test_crawl_series_produces_one_snapshot_per_week(host):
    crawler = DistributedCrawler(host, workers=2)
    series = crawler.crawl_series(["site0.com"], snapshots=4)
    assert [s.snapshot for s in series] == [0, 1, 2, 3]


def test_requires_at_least_one_worker(host):
    with pytest.raises(ValueError):
        DistributedCrawler(host, workers=0)


def test_shared_counter_is_sequential():
    counter = _SharedCounter()
    assert [counter.next() for _ in range(4)] == [0, 1, 2, 3]


class TestTransientFailures:
    def test_zero_rate_never_retries(self, host):
        crawler = DistributedCrawler(host, workers=2)
        snapshot = crawler.crawl(all_domains(host))
        assert snapshot.retries == 0

    def test_retries_recover_most_visits(self, host):
        flaky = DistributedCrawler(host, workers=2,
                                   transient_failure_rate=0.2, max_retries=3)
        snapshot = flaky.crawl(all_domains(host))
        assert snapshot.retries > 0
        # with 3 retries at 20% failure, loss probability is 0.2^4 = 0.16%
        stats = snapshot.stats("web")
        assert stats["live"] == 7

    def test_no_retries_loses_some_visits(self, host):
        fragile = DistributedCrawler(host, workers=2,
                                     transient_failure_rate=0.5, max_retries=0)
        snapshot = fragile.crawl(all_domains(host))
        assert snapshot.stats("web")["live"] < 7

    def test_failures_are_deterministic(self, host):
        a = DistributedCrawler(host, workers=2, transient_failure_rate=0.3)
        b = DistributedCrawler(host, workers=2, transient_failure_rate=0.3)
        snap_a = a.crawl(all_domains(host))
        snap_b = b.crawl(all_domains(host))
        assert snap_a.retries == snap_b.retries
        assert snap_a.live_domains("web") == snap_b.live_domains("web")

    def test_rate_validation(self, host):
        with pytest.raises(ValueError):
            DistributedCrawler(host, transient_failure_rate=1.5)
