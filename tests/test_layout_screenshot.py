"""Layout engine and screenshot rasterizer."""

import numpy as np
import pytest

from repro.web.html import document, el, parse_html
from repro.web.layout import LayoutEngine, PageLayout, TextRegion
from repro.web.screenshot import (
    CELL_HEIGHT,
    CELL_WIDTH,
    INK,
    PAPER,
    Screenshot,
    rasterize,
    render_page,
    to_ascii_art,
)


@pytest.fixture(scope="module")
def engine():
    return LayoutEngine()


def layout_of(*body):
    page = document("T", *body)
    return LayoutEngine().layout(parse_html(page.to_html()))


class TestLayout:
    def test_title_is_first_region(self, engine):
        layout = layout_of(el("p", "body text"))
        assert layout.regions[0].kind == "title"
        assert layout.regions[0].text == "T"

    def test_flow_is_top_to_bottom(self):
        layout = layout_of(el("h1", "one"), el("p", "two"), el("p", "three"))
        ys = [r.y for r in layout.regions]
        assert ys == sorted(ys)

    def test_paragraph_wrapping(self):
        long_text = " ".join(["word"] * 40)
        layout = layout_of(el("p", long_text))
        text_regions = [r for r in layout.regions if r.kind == "text"]
        assert len(text_regions) > 1
        assert all(len(r.text) <= layout.width_cells for r in text_regions)

    def test_form_controls_are_boxed(self):
        layout = layout_of(el("form", el("input", type="text", placeholder="user"),
                              el("button", "Go")))
        controls = layout.form_regions()
        assert {r.kind for r in controls} == {"input", "button"}
        assert all(r.boxed for r in controls)

    def test_hidden_inputs_are_invisible(self):
        layout = layout_of(el("form", el("input", type="hidden", value="secret")))
        assert layout.form_regions() == []

    def test_image_embedded_text_yields_region(self):
        layout = layout_of(el("img", data_embedded_text="paypal", height="48"))
        image_regions = [r for r in layout.regions if r.from_image]
        assert len(image_regions) == 1
        assert image_regions[0].text == "paypal"

    def test_plain_image_alt_is_not_painted(self):
        layout = layout_of(el("img", alt="logo text", height="32"))
        assert all("logo" not in r.text for r in layout.regions)

    def test_margin_style_shifts_region(self):
        plain = layout_of(el("p", "hello"))
        shifted = layout_of(el("p", "hello", style="margin-left: 64px"))
        x_plain = [r.x for r in plain.regions if r.text == "hello"][0]
        x_shifted = [r.x for r in shifted.regions if r.text == "hello"][0]
        assert x_shifted > x_plain

    def test_visible_text_concatenation(self):
        layout = layout_of(el("h1", "Brand"), el("p", "hello world"))
        assert "Brand" in layout.visible_text()
        assert "hello world" in layout.visible_text()


class TestRasterization:
    def test_raster_dimensions(self):
        layout = layout_of(el("p", "x"))
        shot = rasterize(layout)
        assert shot.height == layout.height_cells * CELL_HEIGHT
        assert shot.width == layout.width_cells * CELL_WIDTH

    def test_text_produces_ink(self):
        shot = rasterize(layout_of(el("p", "hello")))
        assert (shot.pixels == INK).sum() > 0
        assert shot.ink_ratio() > 0

    def test_empty_page_is_blank_except_title(self):
        layout = PageLayout()
        shot = rasterize(layout)
        assert (shot.pixels == PAPER).all()

    def test_same_content_same_pixels(self):
        a = render_page(parse_html(document("T", el("p", "same")).to_html()))
        b = render_page(parse_html(document("T", el("p", "same")).to_html()))
        assert np.array_equal(a.pixels, b.pixels)

    def test_different_content_different_pixels(self):
        a = render_page(parse_html(document("T", el("p", "aaa")).to_html()))
        b = render_page(parse_html(document("T", el("p", "bbb")).to_html()))
        assert not np.array_equal(a.pixels, b.pixels)

    def test_boxed_region_draws_border(self):
        boxed = rasterize(layout_of(el("form", el("input", type="text", placeholder="u"))))
        bare = rasterize(layout_of(el("p", "u")))
        assert (boxed.pixels == INK).sum() > (bare.pixels == INK).sum()

    def test_crop(self):
        shot = rasterize(layout_of(el("p", "hello")))
        cropped = shot.crop(0, 0, 10, 10)
        assert cropped.pixels.shape == (10, 10)

    def test_ascii_art_is_nonempty_for_content(self):
        shot = rasterize(layout_of(el("h1", "BIG")))
        art = to_ascii_art(shot)
        assert "#" in art
