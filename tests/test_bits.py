"""Bit-squatting model."""

import pytest

from repro.squatting.bits import BitsModel


@pytest.fixture(scope="module")
def model():
    return BitsModel()


def test_generates_paper_example(model):
    assert "facebnok" in model.generate("facebook")


def test_goofle_is_one_bit_from_google(model):
    assert model.matches("goofle", "google") is not None


def test_all_variants_are_single_bit_flips(model):
    for variant in model.generate("uber"):
        assert len(variant) == 4
        diffs = [(a, b) for a, b in zip(variant, "uber") if a != b]
        assert len(diffs) == 1
        a, b = diffs[0]
        xor = ord(a) ^ ord(b)
        assert xor and (xor & (xor - 1)) == 0


def test_variants_are_valid_hostname_chars(model):
    valid = set("abcdefghijklmnopqrstuvwxyz0123456789-")
    for variant in model.generate("facebook"):
        assert set(variant) <= valid


def test_no_leading_or_trailing_hyphen(model):
    # 'a' ^ 0x0C == 'm'; 'a' ^ 0x40 == '!' (invalid); hyphen edge cases
    for variant in model.generate("aa"):
        assert not variant.startswith("-")
        assert not variant.endswith("-")


def test_detection_detail_format(model):
    detail = model.matches("facebnok", "facebook")
    assert detail == "o->n@5"


def test_detection_rejects_same_label(model):
    assert model.matches("facebook", "facebook") is None


def test_detection_rejects_multi_char_difference(model):
    assert model.matches("facebnnk", "facebook") is None


def test_detection_rejects_non_bitflip_substitution(model):
    # 'f' -> 'z': xor is not a power of two
    assert model.matches("zacebook", "facebook") is None


def test_generate_detect_roundtrip(model):
    for variant in sorted(model.generate("google")):
        assert model.matches(variant, "google") is not None, variant
