"""Additional attacker-model coverage: themes, providers, determinism."""

import numpy as np
import pytest

from repro.brands import Brand
from repro.phishworld.attacker import (
    EvasionProfile,
    PhishingPageBuilder,
    PhishingPageSpec,
    SCAM_THEMES,
)
from repro.web.html import forms, parse_html, text_content


@pytest.fixture(scope="module")
def google():
    return Brand(name="google", domain="google.com", sensitivity="login")


def build_page(brand, theme, **kwargs):
    builder = PhishingPageBuilder(np.random.default_rng(kwargs.pop("seed", 1)))
    spec = PhishingPageSpec(brand=brand, theme=theme,
                            evasion=kwargs.pop("evasion", EvasionProfile()),
                            **kwargs)
    return builder.build(spec)


class TestThemes:
    @pytest.mark.parametrize("theme", SCAM_THEMES)
    def test_every_theme_builds_a_page(self, google, theme):
        page = build_page(google, theme)
        markup = page.to_html()
        assert "<html>" in markup
        tree = parse_html(markup)
        assert tree.find("title") is not None

    def test_support_theme_mentions_technician(self, google):
        page = build_page(google, "support")
        assert "technician" in text_content(parse_html(page.to_html())).lower()

    def test_payroll_theme_mentions_payslip(self, google):
        page = build_page(google, "payroll")
        assert "payslip" in text_content(parse_html(page.to_html())).lower()

    def test_prize_theme_collects_credentials(self, google):
        page = build_page(google, "prize")
        tree = parse_html(page.to_html())
        assert any(i.get("type") == "password" for i in tree.find_all("input"))

    def test_search_theme_has_signin_entry(self, google):
        page = build_page(google, "search")
        assert "sign in" in text_content(parse_html(page.to_html())).lower()

    @pytest.mark.parametrize("theme", ["login", "payment", "prize"])
    def test_harvest_themes_always_have_forms(self, google, theme):
        page = build_page(google, theme)
        assert forms(parse_html(page.to_html()))


class TestDeterminism:
    def test_same_seed_same_page(self, google):
        a = build_page(google, "login", seed=5,
                       evasion=EvasionProfile(layout=True, string=True),
                       layout_variant=3).to_html()
        b = build_page(google, "login", seed=5,
                       evasion=EvasionProfile(layout=True, string=True),
                       layout_variant=3).to_html()
        assert a == b

    def test_layout_variants_differ(self, google):
        pages = {
            build_page(google, "login", seed=5,
                       evasion=EvasionProfile(layout=True),
                       layout_variant=v).to_html()
            for v in range(4)
        }
        assert len(pages) >= 3
