"""Survival analysis over crawl snapshots."""

import pytest

from repro.analysis.lifetime import (
    DomainLifetime,
    LongevityComparison,
    median_lifetime,
    observe_lifetimes,
    summarize_longevity,
    survival_at,
    survival_curve,
)
from repro.web.crawler import CrawlResult, CrawlSnapshot


def make_snapshots(liveness: dict) -> list:
    """liveness: domain -> list of bools per snapshot."""
    total = max(len(v) for v in liveness.values())
    snapshots = []
    for index in range(total):
        snap = CrawlSnapshot(snapshot=index)
        for domain, states in liveness.items():
            live = states[index]
            snap.results[(domain, "web")] = CrawlResult(
                domain=domain, profile="web", snapshot=index,
                live=live, capture=object() if live else None,
            )
        snapshots.append(snap)
    return snapshots


class TestObserveLifetimes:
    def test_full_survivor_is_censored(self):
        snaps = make_snapshots({"a.com": [True, True, True, True]})
        (item,) = observe_lifetimes(snaps, ["a.com"])
        assert item.lifetime == 4
        assert item.censored

    def test_early_death(self):
        snaps = make_snapshots({"a.com": [True, True, False, False]})
        (item,) = observe_lifetimes(snaps, ["a.com"])
        assert item.lifetime == 2
        assert not item.censored

    def test_resurrection_counts_first_life(self):
        # the tacebook.ga pattern: down in week 2, back in week 3
        snaps = make_snapshots({"a.com": [True, True, False, True]})
        (item,) = observe_lifetimes(snaps, ["a.com"])
        assert item.lifetime == 2
        assert not item.censored

    def test_never_live(self):
        snaps = make_snapshots({"a.com": [False, False]})
        (item,) = observe_lifetimes(snaps, ["a.com"])
        assert item.lifetime == 0
        assert not item.censored


class TestSurvivalCurve:
    def test_no_deaths_flat_curve(self):
        lifetimes = [DomainLifetime(f"d{i}", 4, True) for i in range(5)]
        curve = survival_curve(lifetimes)
        assert curve[-1] == (4, 1.0)

    def test_all_die_at_one(self):
        lifetimes = [DomainLifetime(f"d{i}", 1, False) for i in range(4)]
        assert survival_at(lifetimes, 1) == 0.0

    def test_half_die(self):
        lifetimes = (
            [DomainLifetime(f"a{i}", 2, False) for i in range(2)]
            + [DomainLifetime(f"b{i}", 4, True) for i in range(2)]
        )
        assert survival_at(lifetimes, 2) == pytest.approx(0.5)
        assert survival_at(lifetimes, 4) == pytest.approx(0.5)

    def test_censoring_does_not_count_as_death(self):
        lifetimes = [
            DomainLifetime("dead", 2, False),
            DomainLifetime("alive", 2, True),   # censored at 2
        ]
        # at t=2: risk set 2, deaths 1 -> S = 0.5 (not 0)
        assert survival_at(lifetimes, 2) == pytest.approx(0.5)

    def test_curve_is_monotone_nonincreasing(self):
        lifetimes = [
            DomainLifetime("a", 1, False), DomainLifetime("b", 2, False),
            DomainLifetime("c", 3, True), DomainLifetime("d", 3, False),
        ]
        values = [s for _, s in survival_curve(lifetimes)]
        assert all(x >= y for x, y in zip(values, values[1:]))

    def test_empty(self):
        assert survival_curve([]) == []


class TestMedianAndSummary:
    def test_median_crossing(self):
        lifetimes = (
            [DomainLifetime(f"a{i}", 1, False) for i in range(3)]
            + [DomainLifetime(f"b{i}", 3, False) for i in range(2)]
        )
        assert median_lifetime(lifetimes) == 1

    def test_median_none_when_majority_survives(self):
        lifetimes = [DomainLifetime(f"d{i}", 4, True) for i in range(9)]
        lifetimes.append(DomainLifetime("x", 1, False))
        assert median_lifetime(lifetimes) is None

    def test_summary(self):
        snaps = make_snapshots({
            "long.com": [True] * 4,
            "short.com": [True, False, False, False],
        })
        summary = summarize_longevity(snaps, ["long.com", "short.com"])
        assert summary["domains"] == 2
        assert summary["alive_full_window"] == 1
        assert summary["survival_end"] == pytest.approx(0.5)

    def test_paper_consistency_flag(self):
        assert LongevityComparison(0.8).is_consistent_with_paper
        assert not LongevityComparison(0.2).is_consistent_with_paper


def test_pipeline_longevity_matches_paper_shape(pipeline_result):
    summary = summarize_longevity(
        pipeline_result.crawl_snapshots,
        pipeline_result.verified_domains(),
    )
    # Fig 17: most verified squatting phish survive the full month
    assert summary["survival_end"] > 0.5
    assert summary["median_lifetime"] is None
