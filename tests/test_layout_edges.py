"""Layout engine edge cases: nesting, containers, odd styles."""

import pytest

from repro.web.html import document, el, parse_html
from repro.web.layout import LayoutEngine


def layout_of(*body):
    page = document("T", *body)
    return LayoutEngine().layout(parse_html(page.to_html()))


class TestContainers:
    def test_nested_divs_flow(self):
        layout = layout_of(
            el("div", el("div", el("p", "deep text"))))
        assert any(r.text == "deep text" for r in layout.regions)

    def test_list_items_render(self):
        layout = layout_of(el("ul", el("li", "first"), el("li", "second")))
        texts = [r.text for r in layout.regions]
        assert "first" in texts and "second" in texts

    def test_table_cells_render(self):
        layout = layout_of(el("table", el("tr", el("td", "cell one"),
                                          el("td", "cell two"))))
        texts = " ".join(r.text for r in layout.regions)
        assert "cell one" in texts and "cell two" in texts

    def test_unknown_tag_text_is_conservatively_rendered(self):
        layout = layout_of(el("blockquote", "quoted wisdom"))
        assert any("quoted wisdom" in r.text for r in layout.regions)

    def test_head_content_is_not_painted(self):
        page = parse_html(
            "<html><head><meta name='x' content='y'>"
            "<title>T</title></head><body><p>visible</p></body></html>")
        layout = LayoutEngine().layout(page)
        texts = [r.text for r in layout.regions if r.kind != "title"]
        assert all("y" != t for t in texts)


class TestForms:
    def test_nested_form_in_div(self):
        layout = layout_of(el("div", el("form",
                                        el("input", type="text", placeholder="user"))))
        assert layout.form_regions()

    def test_submit_input_renders_as_button(self):
        layout = layout_of(el("form", el("input", type="submit", value="Go!")))
        buttons = [r for r in layout.regions if r.kind == "button"]
        assert buttons and buttons[0].text == "Go!"

    def test_input_without_hint_is_blank_box(self):
        layout = layout_of(el("form", el("input", type="text")))
        assert layout.form_regions() == []   # nothing to draw, box only

    def test_button_value_fallback(self):
        layout = layout_of(el("form", el("button", value="Pay")))
        buttons = [r for r in layout.regions if r.kind == "button"]
        assert buttons[0].text == "Pay"


class TestStyles:
    def test_malformed_margin_is_ignored(self):
        layout = layout_of(el("p", "hi", style="margin-left: banana"))
        assert any(r.text == "hi" for r in layout.regions)

    def test_margin_is_clamped(self):
        layout = layout_of(el("p", "hi", style="margin-left: 99999px"))
        region = next(r for r in layout.regions if r.text == "hi")
        assert region.x <= 21

    def test_other_style_declarations_ignored(self):
        layout = layout_of(el("p", "hi", style="color: red; font-size: 30px"))
        assert any(r.text == "hi" for r in layout.regions)


class TestGeometry:
    def test_page_grows_with_content(self):
        short = layout_of(el("p", "one line"))
        tall = layout_of(*[el("p", f"line {i}") for i in range(120)])
        assert tall.height_cells > short.height_cells

    def test_long_unbroken_heading_is_truncated(self):
        layout = layout_of(el("h1", "x" * 500))
        heading = next(r for r in layout.regions if r.kind == "heading")
        assert len(heading.text) <= layout.width_cells

    def test_br_advances_cursor(self):
        with_br = layout_of(el("div", "a", el("br"), "b"))
        ys = [r.y for r in with_br.regions if r.text in ("a", "b")]
        assert ys[1] > ys[0]
