"""Experiment registry consistency."""

from pathlib import Path

import pytest

from repro.analysis.experiments import REGISTRY, get, render_index

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_registry_covers_all_exhibits():
    exhibits = {e.exhibit for e in REGISTRY}
    expected = {f"Table {i}" for i in range(1, 14)} | {
        f"Fig {i}" for i in range(2, 18)}
    assert exhibits == expected


def test_every_bench_file_exists():
    for experiment in REGISTRY:
        assert (REPO_ROOT / experiment.bench).exists(), experiment.bench


def test_every_module_imports():
    import importlib

    for experiment in REGISTRY:
        for module in experiment.modules:
            importlib.import_module(module)


def test_lookup():
    assert get("Table 8") is not None
    assert get("table8") is not None
    assert get("Fig 99") is None


def test_keys_unique():
    keys = [e.key for e in REGISTRY]
    assert len(keys) == len(set(keys))


def test_render_index_mentions_every_exhibit():
    index = render_index()
    for experiment in REGISTRY:
        assert experiment.exhibit in index
        assert experiment.bench.split("/")[-1] in index
