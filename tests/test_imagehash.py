"""Perceptual image hashes."""

import numpy as np
import pytest

from repro.vision.imagehash import (
    ImageHash,
    average_hash,
    dhash,
    hamming_distance,
    phash,
    resize_bilinear,
)


def gradient(h=64, w=64):
    return np.tile(np.linspace(0, 255, w), (h, 1)).astype(np.uint8)


def checkerboard(h=64, w=64, block=8):
    ys, xs = np.mgrid[0:h, 0:w]
    return (((ys // block + xs // block) % 2) * 255).astype(np.uint8)


HASHES = [average_hash, dhash, phash]


@pytest.mark.parametrize("hash_fn", HASHES)
def test_identical_images_distance_zero(hash_fn):
    image = checkerboard()
    assert hamming_distance(hash_fn(image), hash_fn(image)) == 0


@pytest.mark.parametrize("hash_fn", HASHES)
def test_different_images_nonzero(hash_fn):
    assert hamming_distance(hash_fn(checkerboard()), hash_fn(gradient())) > 8


@pytest.mark.parametrize("hash_fn", HASHES)
def test_hash_length_64(hash_fn):
    assert len(hash_fn(checkerboard())) == 64


@pytest.mark.parametrize("hash_fn", HASHES)
def test_robust_to_small_noise(hash_fn):
    # a smooth random field: strong low-frequency structure, which is the
    # regime where perceptual hashes promise noise robustness
    rng = np.random.default_rng(3)
    coarse = rng.uniform(0, 255, size=(8, 8))
    image = resize_bilinear(coarse, 64, 64).astype(np.int16)
    noisy = np.clip(image + rng.integers(-8, 9, image.shape), 0, 255).astype(np.uint8)
    distance = hamming_distance(hash_fn(image.astype(np.uint8)), hash_fn(noisy))
    # must stay far below "different page" distances (~20+, Fig 9)
    assert distance <= 8


@pytest.mark.parametrize("hash_fn", HASHES)
def test_scale_invariance(hash_fn):
    small = checkerboard(64, 64)
    large = np.kron(small, np.ones((2, 2), dtype=np.uint8))
    assert hamming_distance(hash_fn(small), hash_fn(large)) <= 4


def test_hamming_distance_requires_equal_lengths():
    a = ImageHash(bits=(True, False))
    b = ImageHash(bits=(True,))
    with pytest.raises(ValueError):
        hamming_distance(a, b)


def test_subtraction_operator():
    image = gradient()
    assert (phash(image) - phash(image)) == 0


def test_hash_hex_rendering():
    value = average_hash(checkerboard())
    assert len(value.hex()) == 16
    int(value.hex(), 16)  # parses as hex


class TestResize:
    def test_identity(self):
        image = gradient(10, 10)
        assert np.allclose(resize_bilinear(image, 10, 10), image)

    def test_output_shape(self):
        assert resize_bilinear(gradient(64, 48), 8, 8).shape == (8, 8)

    def test_preserves_constant_images(self):
        flat = np.full((33, 17), 99.0)
        assert np.allclose(resize_bilinear(flat, 8, 8), 99.0)

    def test_downsample_preserves_mean_roughly(self):
        image = gradient(64, 64)
        small = resize_bilinear(image, 8, 8)
        assert abs(small.mean() - image.mean()) < 3.0
