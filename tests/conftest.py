"""Shared fixtures.

The expensive artifacts — a synthetic world and a full pipeline run — are
session-scoped so the integration tests share one build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.brands import build_paper_catalog
from repro.core import PipelineConfig, SquatPhi
from repro.phishworld.world import WorldConfig, build_world


@pytest.fixture(scope="session")
def catalog():
    """The 702-brand catalog (cheap, deterministic)."""
    return build_paper_catalog()


@pytest.fixture(scope="session")
def micro_world():
    """A very small world for unit-ish integration tests."""
    return build_world(WorldConfig(
        seed=1803,
        n_organic_domains=120,
        n_squat_domains=220,
        n_phish_domains=32,
        phishtank_reports=110,
    ))


@pytest.fixture(scope="session")
def pipeline(micro_world):
    """A trained SquatPhi over the micro world."""
    return SquatPhi(micro_world, PipelineConfig(cv_folds=4, rf_trees=12))


@pytest.fixture(scope="session")
def pipeline_result(pipeline):
    """One full pipeline run (all stages, follow-up snapshots included)."""
    return pipeline.run(follow_up_snapshots=True)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)
