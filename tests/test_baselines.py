"""DNSTwist / URLCrazy baseline generators and coverage scoring."""

import pytest

from repro.squatting.baselines import (
    BaselineReport,
    DNSTwistBaseline,
    URLCrazyBaseline,
    baseline_coverage,
    coverage_by_type,
)
from repro.squatting.types import SquatType


@pytest.fixture(scope="module")
def dnstwist():
    return DNSTwistBaseline()


@pytest.fixture(scope="module")
def urlcrazy():
    return URLCrazyBaseline()


class TestDNSTwist:
    def test_generates_typo_and_bits(self, dnstwist):
        candidates = dnstwist.generate("facebook.com")
        assert "facebok.com" in candidates       # omission
        assert "facebnok.com" in candidates      # bit flip

    def test_keeps_original_tld_only(self, dnstwist):
        """The paper's complaint: facebookj.com yes, facebookj.es no."""
        candidates = dnstwist.generate("facebook.com")
        assert "facebookj.com" in candidates
        assert "facebookj.es" not in candidates
        assert all(c.endswith(".com") for c in candidates)

    def test_no_combo_or_wrongtld(self, dnstwist):
        candidates = dnstwist.generate("facebook.com")
        assert "facebook-login.com" not in candidates
        assert "facebook.audi" not in candidates

    def test_homograph_coverage_is_partial(self, dnstwist):
        from repro.squatting.homograph import HomographModel

        full = {f"{label}.com" for label in HomographModel().generate_idn("apple")}
        reduced = {c for c in dnstwist.generate("apple.com") if c.startswith("xn--")}
        assert reduced  # it does produce IDN candidates...
        assert len(reduced & full) < len(full)  # ...but misses part of the space

    def test_excludes_the_brand_itself(self, dnstwist):
        assert "facebook.com" not in dnstwist.generate("facebook.com")


class TestURLCrazy:
    def test_typo_classes(self, urlcrazy):
        candidates = urlcrazy.generate("google.com")
        assert "gogle.com" in candidates         # omission
        assert "gooogle.com" in candidates       # repetition
        assert "ogogle.com" in candidates        # transposition

    def test_keyboard_substitution(self, urlcrazy):
        # f -> g are adjacent on QWERTY
        assert "gacebook.com" in urlcrazy.generate("facebook.com")

    def test_vowel_swap(self, urlcrazy):
        assert "facebaok.com" in urlcrazy.generate("facebook.com")

    def test_no_idn_output(self, urlcrazy):
        assert all(not c.startswith("xn--")
                   for c in urlcrazy.generate("facebook.com"))


class TestCoverage:
    OBSERVED = {
        "facebok.com": ("facebook", SquatType.TYPO),
        "facebnok.com": ("facebook", SquatType.BITS),
        "facebook-login.com": ("facebook", SquatType.COMBO),
        "facebook.audi": ("facebook", SquatType.WRONG_TLD),
        "facebok.tk": ("facebook", SquatType.TYPO),   # off-TLD typo
    }
    BRANDS = {"facebook": "facebook.com"}

    def test_dnstwist_misses_offtld_combo_wrongtld(self, dnstwist):
        report = baseline_coverage(dnstwist, self.BRANDS, self.OBSERVED)
        assert report.matched == 2          # only same-TLD typo + bits
        assert report.observed == 5
        assert report.recall == pytest.approx(0.4)

    def test_by_type_breakdown(self, dnstwist):
        buckets = coverage_by_type(dnstwist, self.BRANDS, self.OBSERVED)
        assert buckets["combo"] == (0, 1)
        assert buckets["wrongTLD"] == (0, 1)
        assert buckets["typo"] == (1, 2)
        assert buckets["bits"] == (1, 1)

    def test_empty_observed(self, dnstwist):
        report = baseline_coverage(dnstwist, self.BRANDS, {})
        assert report.recall == 0.0


def test_report_recall_property():
    report = BaselineReport(name="x", generated=10, matched=3, observed=4)
    assert report.recall == 0.75
