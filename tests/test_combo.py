"""Combo squatting model."""

import pytest

from repro.squatting.combo import COMMON_AFFIXES, ComboModel


@pytest.fixture(scope="module")
def model():
    return ComboModel()


class TestGeneration:
    def test_hyphenated_combos(self, model):
        variants = model.generate("facebook")
        assert "facebook-login" in variants
        assert "login-facebook" in variants

    def test_glued_combos_contain_hyphen(self, model):
        for variant in model.generate_glued("uber", ["freight", "go"]):
            assert "-" in variant
            assert "uber" in variant

    def test_glued_tail_variants(self, model):
        # the third shape glues the *next* affix onto the brand tail
        # (go-uberfreight style) instead of repeating the hyphenated pair
        variants = model.generate("uber", affixes=("go", "freight"))
        assert "go-uberfreight" in variants
        assert "freight-ubergo" in variants

    def test_every_generated_variant_is_detected(self, model):
        for variant in sorted(model.generate("facebook")):
            assert model.matches(variant, "facebook") is not None, variant


class TestDetection:
    @pytest.mark.parametrize("label,target,kind", [
        ("facebook-story", "facebook", "token"),
        ("story-facebook", "facebook", "token"),
        ("mobile-adp", "adp", "token"),          # short brand, exact token
        ("go-uberfreight", "uber", "substring"), # glued affix
        ("live-microsoftsupport", "microsoft", "substring"),
        ("securemail-citizenslc", "citizenslc", "token"),
    ])
    def test_positive(self, model, label, target, kind):
        assert model.matches(label, target) == kind

    @pytest.mark.parametrize("label,target", [
        ("facebook", "facebook"),      # no hyphen
        ("facebookstory", "facebook"), # no hyphen at all
        ("face-book", "facebook"),     # brand broken across tokens
        ("my-adparts", "adp"),         # short brand must be exact token
        ("pay-pal", "paypal"),
    ])
    def test_negative(self, model, label, target):
        assert model.matches(label, target) is None

    def test_min_brand_length_guards_substrings(self):
        strict = ComboModel(min_brand_length=6)
        assert strict.matches("go-uberfreight", "uber") is None
        assert strict.matches("go-uber", "uber") == "token"


def test_affix_list_has_no_duplicates():
    assert len(COMMON_AFFIXES) == len(set(COMMON_AFFIXES))
