"""Attacker model: phishing page construction and evasion behaviour."""

import numpy as np
import pytest

from repro.analysis.evasion import code_obfuscated, string_obfuscated
from repro.brands import Brand
from repro.phishworld.attacker import (
    EvasionProfile,
    PhishingPageBuilder,
    PhishingPageSpec,
    draw_evasion_profile,
)
from repro.web.html import forms, parse_html
from repro.web.http import MOBILE_UA, WEB_UA


@pytest.fixture(scope="module")
def builder():
    return PhishingPageBuilder(np.random.default_rng(33))


@pytest.fixture(scope="module")
def paypal():
    return Brand(name="paypal", domain="paypal.com", sensitivity="payment")


def build(builder, brand, **kwargs):
    evasion = kwargs.pop("evasion", EvasionProfile())
    spec = PhishingPageSpec(brand=brand, theme=kwargs.pop("theme", "login"),
                            evasion=evasion, **kwargs)
    return builder.build(spec)


class TestPageConstruction:
    def test_plain_login_page_has_form_and_brand(self, builder, paypal):
        page = build(builder, paypal)
        tree = parse_html(page.to_html())
        assert forms(tree)
        assert not string_obfuscated(page.to_html(), "paypal")

    def test_payment_theme_collects_card_data(self, builder, paypal):
        page = build(builder, paypal, theme="payment")
        markup = page.to_html()
        assert "card number" in markup

    def test_search_theme_has_search_box(self, builder, paypal):
        page = build(builder, paypal, theme="search")
        assert "search the web" in page.to_html()

    def test_degraded_page_has_no_form(self, builder, paypal):
        page = build(builder, paypal, degraded=True)
        assert not forms(parse_html(page.to_html()))
        assert "action.php" in page.to_html()


class TestEvasion:
    def test_string_obfuscation_hides_brand_from_html(self, builder, paypal):
        hidden = 0
        for _ in range(12):
            page = build(builder, paypal,
                         evasion=EvasionProfile(string=True))
            if string_obfuscated(page.to_html(), "paypal"):
                hidden += 1
        assert hidden >= 10  # obfuscate_brand_string has rare no-op cases

    def test_code_obfuscation_adds_indicators(self, builder, paypal):
        page = build(builder, paypal, evasion=EvasionProfile(code=True))
        assert code_obfuscated(page.to_html())

    def test_plain_page_has_no_code_obfuscation(self, builder, paypal):
        page = build(builder, paypal)
        assert not code_obfuscated(page.to_html())

    def test_layout_obfuscation_changes_structure(self, builder, paypal):
        plain = build(builder, paypal).to_html()
        obfuscated = build(builder, paypal,
                           evasion=EvasionProfile(layout=True),
                           layout_variant=3).to_html()
        assert plain != obfuscated

    def test_js_injection_moves_form_into_script(self, builder, paypal):
        page = build(builder, paypal,
                     evasion=EvasionProfile(js_form_injection=True))
        tree = parse_html(page.to_html())
        assert not forms(tree)  # static form absent
        assert "innerHTML" in page.to_html()

    def test_obfuscate_brand_string(self):
        out = PhishingPageBuilder.obfuscate_brand_string("paypal")
        assert out != "paypal"
        assert "paypal" not in out.lower()

    def test_string_variant_distribution(self, builder):
        import numpy as np
        fresh = PhishingPageBuilder(np.random.default_rng(77))
        variants = [fresh._draw_string_variant(EvasionProfile(string=True))
                    for _ in range(600)]
        counts = {v: variants.count(v) for v in set(variants)}
        # ~50% image-only (the heavy case), rest perturbed/limited
        assert 0.40 < counts["image-only"] / 600 < 0.60
        assert counts.get("perturbed", 0) > 0
        assert counts.get("limited", 0) > 0
        assert fresh._draw_string_variant(EvasionProfile(string=False)) is None

    def test_image_only_pages_are_lexically_portal_like(self, builder, paypal):
        """The heavy variant's HTML must read as an ordinary member login."""
        import numpy as np
        from repro.web.html import parse_html, text_content

        fresh = PhishingPageBuilder(np.random.default_rng(5))
        # force the image-only path by drawing until we get it
        for _ in range(20):
            spec = PhishingPageSpec(brand=paypal, theme="login",
                                    evasion=EvasionProfile(string=True))
            page = fresh.build(spec)
            html = page.to_html()
            if "data-embedded-text" in html and "verify your account" in html:
                text = text_content(parse_html(html)).lower()
                assert "paypal" not in text
                assert "verify" not in text     # pitch lives in images only
                assert "password" in html       # the form itself remains
                return
        raise AssertionError("image-only variant never drawn in 20 tries")


class TestCloaking:
    def test_serves_matrix(self):
        assert EvasionProfile(cloaking="both").serves(WEB_UA)
        assert EvasionProfile(cloaking="both").serves(MOBILE_UA)
        assert not EvasionProfile(cloaking="mobile").serves(WEB_UA)
        assert EvasionProfile(cloaking="mobile").serves(MOBILE_UA)
        assert EvasionProfile(cloaking="web").serves(WEB_UA)
        assert not EvasionProfile(cloaking="web").serves(MOBILE_UA)


class TestProfileDraw:
    def test_squatting_rates(self):
        rng = np.random.default_rng(44)
        profiles = [draw_evasion_profile(rng, squatting=True) for _ in range(2000)]
        string_rate = sum(p.string for p in profiles) / len(profiles)
        code_rate = sum(p.code for p in profiles) / len(profiles)
        assert 0.62 < string_rate < 0.74       # Table 11: ~68%
        assert 0.28 < code_rate < 0.41         # Table 11: ~34-35%
        cloak_both = sum(p.cloaking == "both" for p in profiles) / len(profiles)
        assert 0.42 < cloak_both < 0.58        # §6.1: 590/1175

    def test_reported_rates(self):
        rng = np.random.default_rng(45)
        profiles = [draw_evasion_profile(rng, squatting=False) for _ in range(2000)]
        string_rate = sum(p.string for p in profiles) / len(profiles)
        assert 0.30 < string_rate < 0.42       # Table 11: ~36%
        assert all(p.cloaking == "both" for p in profiles)  # §4.2: no cloaking
