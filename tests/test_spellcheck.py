"""Damerau-Levenshtein distance and the OCR spell checker."""

import pytest

from repro.ocr.spellcheck import DEFAULT_LEXICON, SpellChecker, damerau_levenshtein


class TestDistance:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("a", "", 1),
        ("", "abc", 3),
        ("kitten", "sitting", 3),
        ("password", "password", 0),
        ("passwod", "password", 1),       # deletion
        ("pasword", "password", 1),
        ("passwrod", "password", 1),      # transposition
        ("passw0rd", "password", 1),      # substitution
        ("abcdef", "badcfe", 3),          # three transpositions
    ])
    def test_known_values(self, a, b, expected):
        assert damerau_levenshtein(a, b) == expected

    def test_symmetry(self):
        assert damerau_levenshtein("login", "logni") == damerau_levenshtein("logni", "login")

    def test_cap_early_exit(self):
        assert damerau_levenshtein("aaaa", "zzzz", cap=1) == 2  # cap + 1

    def test_cap_length_shortcut(self):
        assert damerau_levenshtein("a", "abcdef", cap=2) == 3


class TestSpellChecker:
    @pytest.fixture(scope="class")
    def checker(self):
        return SpellChecker()

    def test_paper_example(self, checker):
        # §5.2: Tesseract sometimes emits "passwod"
        assert checker.correct_word("passwod") == "password"

    def test_in_dictionary_unchanged(self, checker):
        assert checker.correct_word("password") == "password"

    def test_short_words_untouched(self, checker):
        assert checker.correct_word("pya") == "pya"

    def test_unknown_far_word_unchanged(self, checker):
        assert checker.correct_word("zzzzzzzz") == "zzzzzzzz"

    def test_correct_text(self, checker):
        assert checker.correct_text("enter your passwod") == "enter your password"

    def test_case_folding(self, checker):
        assert checker.correct_word("PassWod") == "password"

    def test_custom_words(self):
        checker = SpellChecker()
        checker.add_word("paypal")
        assert checker.correct_word("paypa1") == "paypal"
        assert "paypal" in checker

    def test_add_words_batch(self):
        checker = SpellChecker(lexicon=())
        checker.add_words(["facebook", "google"])
        assert checker.correct_word("facebok") == "facebook"

    def test_default_lexicon_has_core_vocabulary(self):
        for word in ("password", "username", "login", "verify"):
            assert word in DEFAULT_LEXICON
