"""Damerau-Levenshtein distance and the OCR spell checker."""

import pytest

from repro.ocr.spellcheck import DEFAULT_LEXICON, SpellChecker, damerau_levenshtein


class TestDistance:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("a", "", 1),
        ("", "abc", 3),
        ("kitten", "sitting", 3),
        ("password", "password", 0),
        ("passwod", "password", 1),       # deletion
        ("pasword", "password", 1),
        ("passwrod", "password", 1),      # transposition
        ("passw0rd", "password", 1),      # substitution
        ("abcdef", "badcfe", 3),          # three transpositions
    ])
    def test_known_values(self, a, b, expected):
        assert damerau_levenshtein(a, b) == expected

    def test_symmetry(self):
        assert damerau_levenshtein("login", "logni") == damerau_levenshtein("logni", "login")

    def test_cap_early_exit(self):
        assert damerau_levenshtein("aaaa", "zzzz", cap=1) == 2  # cap + 1

    def test_cap_length_shortcut(self):
        assert damerau_levenshtein("a", "abcdef", cap=2) == 3


class TestSpellChecker:
    @pytest.fixture(scope="class")
    def checker(self):
        return SpellChecker()

    def test_paper_example(self, checker):
        # §5.2: Tesseract sometimes emits "passwod"
        assert checker.correct_word("passwod") == "password"

    def test_in_dictionary_unchanged(self, checker):
        assert checker.correct_word("password") == "password"

    def test_short_words_untouched(self, checker):
        assert checker.correct_word("pya") == "pya"

    def test_unknown_far_word_unchanged(self, checker):
        assert checker.correct_word("zzzzzzzz") == "zzzzzzzz"

    def test_correct_text(self, checker):
        assert checker.correct_text("enter your passwod") == "enter your password"

    def test_case_folding(self, checker):
        assert checker.correct_word("PassWod") == "password"

    def test_custom_words(self):
        checker = SpellChecker()
        checker.add_word("paypal")
        assert checker.correct_word("paypa1") == "paypal"
        assert "paypal" in checker

    def test_add_words_batch(self):
        checker = SpellChecker(lexicon=())
        checker.add_words(["facebook", "google"])
        assert checker.correct_word("facebok") == "facebook"

    def test_default_lexicon_has_core_vocabulary(self):
        for word in ("password", "username", "login", "verify"):
            assert word in DEFAULT_LEXICON


class TestDeletionIndexEquivalence:
    """The deletion-index search returns the exact correction the reference
    length-bucket scan picks, including its scan-order tie-breaks."""

    def _fuzz_words(self, lexicon, seed=7):
        import numpy as np

        rng = np.random.default_rng(seed)
        alpha = "abcdefghijklmnopqrstuvwxyz0123456789"
        words = []
        for base in lexicon:
            for _ in range(6):
                chars = list(base)
                op = int(rng.integers(4))
                i = int(rng.integers(len(chars)))
                if op == 0 and len(chars) > 1:
                    del chars[i]
                elif op == 1:
                    chars.insert(i, alpha[int(rng.integers(len(alpha)))])
                elif op == 2:
                    chars[i] = alpha[int(rng.integers(len(alpha)))]
                elif op == 3 and i + 1 < len(chars):
                    chars[i], chars[i + 1] = chars[i + 1], chars[i]
                words.append("".join(chars))
            words.append(base + "xy")  # distance 2: must stay unchanged
        words += ["".join(alpha[int(rng.integers(36))]
                          for _ in range(int(rng.integers(4, 12))))
                  for _ in range(200)]
        return words

    def test_matches_reference_scan(self):
        lexicon = list(DEFAULT_LEXICON) + ["paypal", "payal", "appple"]
        indexed = SpellChecker(lexicon)
        reference = SpellChecker(lexicon, legacy=True)
        for word in self._fuzz_words(lexicon):
            assert indexed.correct_word(word) == reference.correct_word(word)

    def test_tie_break_prefers_shorter_then_insertion_order(self):
        # "payal" sits at distance 1 from both entries; the reference scan
        # visits the length-4 bucket first — the index must agree
        indexed = SpellChecker(["pays", "payal"[:-1] + "ll"])
        reference = SpellChecker(["pays", "payal"[:-1] + "ll"], legacy=True)
        assert indexed.correct_word("payal") == reference.correct_word("payal")

    def test_index_tracks_added_words(self):
        checker = SpellChecker([])
        assert checker.correct_word("verfy") == "verfy"
        checker.add_word("verify")
        assert checker.correct_word("verfy") == "verify"
