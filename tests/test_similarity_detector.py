"""Visual-similarity baseline detector and its §4.2 failure mode."""

import numpy as np
import pytest

from repro.brands import Brand
from repro.phishworld.attacker import (
    EvasionProfile,
    PhishingPageBuilder,
    PhishingPageSpec,
)
from repro.phishworld.sites import brand_original_page, organic_page
from repro.vision.similarity_detector import (
    VisualSimilarityDetector,
    sweep_thresholds,
)
from repro.web.html import parse_html
from repro.web.screenshot import render_page


def pixels_of(page):
    return render_page(parse_html(page.to_html())).pixels


@pytest.fixture(scope="module")
def paypal():
    return Brand(name="paypal", domain="paypal.com", sensitivity="payment")


@pytest.fixture(scope="module")
def detector(paypal):
    d = VisualSimilarityDetector(threshold=10)
    d.register_brand("paypal", pixels_of(brand_original_page(paypal)))
    return d


class TestDetector:
    def test_exact_copy_is_flagged(self, detector, paypal):
        assert detector.classify(pixels_of(brand_original_page(paypal)))

    def test_unrelated_page_is_clean(self, detector):
        page = organic_page("weather-report.net", np.random.default_rng(4))
        assert not detector.classify(pixels_of(page))

    def test_nearest_reports_brand(self, detector, paypal):
        match = detector.nearest(pixels_of(brand_original_page(paypal)))
        assert match.brand == "paypal"
        assert match.distance == 0

    def test_empty_detector(self):
        empty = VisualSimilarityDetector()
        assert empty.nearest(np.zeros((8, 8), dtype=np.uint8)) is None
        assert not empty.classify(np.zeros((8, 8), dtype=np.uint8))

    def test_protected_brands_listing(self, detector):
        assert detector.protected_brands == ["paypal"]


class TestLayoutObfuscationDefeatsBaseline:
    """§4.2: obfuscated phishing drifts beyond any tight threshold."""

    def phish_pixels(self, paypal, variant):
        builder = PhishingPageBuilder(np.random.default_rng(9))
        page = builder.build(PhishingPageSpec(
            brand=paypal, theme="login",
            evasion=EvasionProfile(layout=True, string=True),
            layout_variant=variant))
        return pixels_of(page)

    def test_obfuscated_phish_evades_tight_threshold(self, detector, paypal):
        evaded = sum(
            1 for variant in range(6)
            if not detector.classify(self.phish_pixels(paypal, variant))
        )
        assert evaded >= 5      # nearly all drift beyond distance 10

    def test_threshold_sweep_shows_the_tradeoff(self, detector, paypal):
        positives = [self.phish_pixels(paypal, v) for v in range(6)]
        rng = np.random.default_rng(11)
        negatives = [pixels_of(organic_page(f"site{i}.net", rng))
                     for i in range(8)]
        points = sweep_thresholds(detector, positives, negatives)
        by_threshold = {p.threshold: p for p in points}
        # tight threshold: safe but blind
        assert by_threshold[10].recall < 0.5
        # loose threshold: catches phish but benign pages start matching
        assert by_threshold[35].recall > by_threshold[10].recall
        assert by_threshold[35].false_positive_rate >= by_threshold[10].false_positive_rate
        # recall is monotone in the threshold
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls)
