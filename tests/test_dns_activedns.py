"""Snapshot serialization round-trips."""

import pytest

from repro.dns.activedns import iter_snapshot, load_snapshot, write_snapshot
from repro.dns.records import DNSRecord
from repro.faults.errors import SnapshotCorruptError


RECORDS = [
    DNSRecord(name="facebook.com", ip="31.13.71.36", source="alexa-1m"),
    DNSRecord(name="faceb00k.pw", ip="5.6.7.8", source="zone"),
    DNSRecord(name="xn--fcebook-8va.com", ip="9.9.9.9"),
]


def test_roundtrip_plain(tmp_path):
    path = tmp_path / "snapshot.tsv"
    count = write_snapshot(RECORDS, path)
    assert count == 3
    loaded = list(iter_snapshot(path))
    assert loaded == RECORDS


def test_roundtrip_gzip(tmp_path):
    path = tmp_path / "snapshot.tsv.gz"
    write_snapshot(RECORDS, path)
    assert load_snapshot(path).get("faceb00k.pw").ip == "5.6.7.8"


def test_skips_blanks_and_comments_defaults_short_records(tmp_path):
    path = tmp_path / "clean.tsv"
    path.write_text(
        "# comment line\n"
        "\n"
        "good.com\t1.2.3.4\tA\tzone\n"
        "short.com\t4.3.2.1\n",
        encoding="utf-8",
    )
    loaded = list(iter_snapshot(path))
    assert [r.name for r in loaded] == ["good.com", "short.com"]
    # a two-field line is valid: type and source take their defaults
    assert loaded[1].record_type == "A"
    assert loaded[1].source == "zone"


def test_truncated_line_raises_typed_error_with_line_number(tmp_path):
    path = tmp_path / "dirty.tsv"
    path.write_text(
        "# comment line\n"
        "\n"
        "only-one-field\n"
        "good.com\t1.2.3.4\tA\tzone\n",
        encoding="utf-8",
    )
    with pytest.raises(SnapshotCorruptError) as excinfo:
        list(iter_snapshot(path))
    assert excinfo.value.line_number == 3
    assert excinfo.value.path == str(path)
    assert excinfo.value.kind == "snapshot_corrupt"


def test_truncation_mid_file_stops_before_corrupt_line(tmp_path):
    path = tmp_path / "cut.tsv.gz"
    write_snapshot(RECORDS, path)
    import gzip
    with gzip.open(path, "at", encoding="utf-8") as handle:
        handle.write("truncated-tail\n")
    records = iter_snapshot(path)
    assert next(records).name == "facebook.com"
    assert next(records).name == "faceb00k.pw"
    assert next(records).name == "xn--fcebook-8va.com"
    with pytest.raises(SnapshotCorruptError) as excinfo:
        next(records)
    assert excinfo.value.line_number == 4


def test_load_builds_indexed_store(tmp_path):
    path = tmp_path / "snap.tsv"
    write_snapshot(RECORDS, path)
    zone = load_snapshot(path)
    assert len(zone) == 3
    assert zone.has_registered_domain("facebook.com")
