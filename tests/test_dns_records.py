"""DNS record model and domain-splitting helpers."""

import pytest

from repro.dns.records import (
    DNSRecord,
    is_valid_hostname,
    registered_domain,
    split_domain,
)


class TestSplitDomain:
    def test_simple_com(self):
        assert split_domain("facebook.com") == ("facebook", "com")

    def test_ignores_subdomains(self):
        assert split_domain("mail.google-app.de") == ("google-app", "de")
        assert split_domain("a.b.c.example.com") == ("example", "com")

    def test_multi_label_suffix(self):
        # the paper's goofle.com.ua example must split on the ccSLD
        assert split_domain("goofle.com.ua") == ("goofle", "com.ua")
        assert split_domain("santander.co.uk") == ("santander", "co.uk")

    def test_unknown_tld_falls_back_to_last_label(self):
        core, tld = split_domain("weird.zzz")
        assert (core, tld) == ("weird", "zzz")

    def test_single_label(self):
        assert split_domain("localhost") == ("localhost", "")

    def test_case_and_trailing_dot(self):
        assert split_domain("FaceBook.COM.") == ("facebook", "com")


class TestRegisteredDomain:
    def test_collapses_subdomains(self):
        assert registered_domain("www.blog.vice.com") == "vice.com"

    def test_identity_for_registered(self):
        assert registered_domain("vice.com") == "vice.com"


class TestDNSRecord:
    def test_normalizes_name(self):
        record = DNSRecord(name="WWW.Example.COM.", ip="1.2.3.4")
        assert record.name == "www.example.com"

    def test_core_label_and_tld(self):
        record = DNSRecord(name="mail.facebook-login.tk", ip="1.2.3.4")
        assert record.core_label == "facebook-login"
        assert record.tld == "tk"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            DNSRecord(name="", ip="1.2.3.4")

    def test_frozen(self):
        record = DNSRecord(name="a.com", ip="1.2.3.4")
        with pytest.raises(Exception):
            record.ip = "5.6.7.8"


class TestHostnameValidity:
    @pytest.mark.parametrize("name", [
        "facebook.com", "a-b.net", "xn--fcebook-8va.com", "a1.b2.c3.org",
    ])
    def test_valid(self, name):
        assert is_valid_hostname(name)

    @pytest.mark.parametrize("name", [
        "", "-bad.com", "bad-.com", "under_score.com", "spaces here.com",
        "a" * 64 + ".com",
    ])
    def test_invalid(self, name):
        assert not is_valid_hostname(name)
