"""Setuptools shim for environments without the wheel package.

``pip install -e .`` on this machine (offline, no ``wheel``) falls back to the
legacy editable path, which needs a ``setup.py``.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
